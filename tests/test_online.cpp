#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "sim/online_sim.hpp"

namespace llmpq {
namespace {

TEST(ShareGptWorkload, ShapeMatchesPaperObservation) {
  Rng rng(31);
  const auto reqs = generate_sharegpt_workload(rng, 2000, 2.0);
  ASSERT_EQ(reqs.size(), 2000u);
  // Paper Sec 2.1: a substantial short-prompt mass; long tail exists.
  const double short_frac = fraction_below(reqs, 128);
  EXPECT_GT(short_frac, 0.4);
  EXPECT_LT(short_frac, 0.95);
  int longest = 0;
  for (const auto& r : reqs) longest = std::max(longest, r.prompt_len);
  EXPECT_GT(longest, 512);
  // Arrivals strictly ordered, lengths within bounds.
  for (std::size_t i = 1; i < reqs.size(); ++i)
    EXPECT_GE(reqs[i].arrival_s, reqs[i - 1].arrival_s);
  for (const auto& r : reqs) {
    EXPECT_GE(r.prompt_len, 4);
    EXPECT_LE(r.prompt_len, 1024);
    EXPECT_GE(r.gen_tokens, 4);
    EXPECT_LE(r.gen_tokens, 256);
  }
}

TEST(ShareGptWorkload, RateControlsArrivalDensity) {
  Rng a(1), b(1);
  const auto slow = generate_sharegpt_workload(a, 500, 1.0);
  const auto fast = generate_sharegpt_workload(b, 500, 10.0);
  EXPECT_GT(slow.back().arrival_s, 5.0 * fast.back().arrival_s);
}

class OnlineSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto pc = paper_cluster(3);
    cluster_ = pc.cluster;
    model_ = &model_registry_get(pc.model_name);
    CostProvider cost(*model_, cluster_, CostMode::kProfiled);
    plan_ = pipeedge_plan(cost);
  }
  ClusterSpec cluster_;
  const ModelSpec* model_ = nullptr;
  ExecutionPlan plan_;
};

TEST_F(OnlineSimTest, CompletesAllRequestsUnderBothPolicies) {
  Rng rng(7);
  const auto reqs = generate_sharegpt_workload(rng, 60, 1.0, 512, 64);
  for (SchedulerPolicy policy : {SchedulerPolicy::kStaticBatching,
                                 SchedulerPolicy::kIterationLevel}) {
    OnlineSimOptions opt;
    opt.policy = policy;
    const OnlineSimResult r =
        simulate_online(*model_, cluster_, plan_, reqs, opt);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.completed, 60);
    EXPECT_GT(r.throughput_tokens_per_s, 0.0);
    EXPECT_GE(r.p95_latency_s, r.mean_latency_s);
    EXPECT_GT(r.makespan_s, reqs.back().arrival_s);
  }
}

TEST_F(OnlineSimTest, IterationLevelBeatsStaticOnMixedLengths) {
  // The ORCA insight: with heterogeneous generation lengths, static
  // batching wastes rounds padding to the slowest member.
  Rng rng(13);
  const auto reqs = generate_sharegpt_workload(rng, 80, 2.0, 512, 128);
  OnlineSimOptions stat;
  stat.policy = SchedulerPolicy::kStaticBatching;
  OnlineSimOptions orca;
  orca.policy = SchedulerPolicy::kIterationLevel;
  const OnlineSimResult rs =
      simulate_online(*model_, cluster_, plan_, reqs, stat);
  const OnlineSimResult ro =
      simulate_online(*model_, cluster_, plan_, reqs, orca);
  ASSERT_TRUE(rs.ok && ro.ok);
  EXPECT_LT(ro.mean_latency_s, rs.mean_latency_s);
}

TEST_F(OnlineSimTest, OomPlanIsRejected) {
  ExecutionPlan bad = plan_;
  std::fill(bad.layer_bits.begin(), bad.layer_bits.end(), 16);
  Rng rng(5);
  const auto reqs = generate_sharegpt_workload(rng, 5, 1.0);
  const OnlineSimResult r = simulate_online(*model_, cluster_, bad, reqs);
  EXPECT_FALSE(r.ok);
}

TEST_F(OnlineSimTest, LoneRequestDispatchesAtStaleDeadline) {
  // Regression (stale-timer bug): the old static-batching loop waited for
  // the next arrival, so a lone request's wait was tied to traffic that
  // never came. It must be admitted at exactly arrival + max_wait_s.
  OnlineRequest r;
  r.arrival_s = 1.5;
  r.prompt_len = 64;
  r.gen_tokens = 16;
  OnlineSimOptions opt;
  opt.policy = SchedulerPolicy::kStaticBatching;
  opt.batch_size = 16;
  opt.max_wait_s = 4.0;
  const OnlineSimResult res = simulate_online(*model_, cluster_, plan_, {r}, opt);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(res.requests.size(), 1u);
  EXPECT_DOUBLE_EQ(res.requests[0].admit_s, 5.5);  // arrival + max_wait_s
  EXPECT_DOUBLE_EQ(res.requests[0].queue_delay_s, 4.0);
  ASSERT_EQ(res.decisions.size(), 1u);
  EXPECT_EQ(res.decisions[0].request_ids, std::vector<int>{0});
}

TEST_F(OnlineSimTest, QueueDelayNoLongerIncludesPrefill) {
  // Regression (conflation bug): the old iteration-level path recorded
  // t_after_prefill - arrival as "queue delay". A burst admitted instantly
  // must show zero queue delay with the prefill cost reported separately.
  std::vector<OnlineRequest> reqs;
  for (int i = 0; i < 8; ++i) {
    OnlineRequest r;
    r.arrival_s = 0.0;
    r.prompt_len = 128;
    r.gen_tokens = 8;
    reqs.push_back(r);
  }
  OnlineSimOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.max_batch = 8;
  const OnlineSimResult res =
      simulate_online(*model_, cluster_, plan_, reqs, opt);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.completed, 8);
  EXPECT_NEAR(res.mean_queue_delay_s, 0.0, 1e-12);
  EXPECT_GT(res.mean_prefill_s, 0.0);
  for (const RequestStats& r : res.requests) {
    EXPECT_DOUBLE_EQ(r.admit_s, 0.0);
    EXPECT_GT(r.prefill_s, 0.0);
    EXPECT_GE(r.finish_s, r.admit_s + r.prefill_s);
  }
}

TEST_F(OnlineSimTest, HigherLoadRaisesLatency) {
  Rng a(3), b(3);
  const auto light = generate_sharegpt_workload(a, 50, 0.5, 512, 64);
  const auto heavy = generate_sharegpt_workload(b, 50, 8.0, 512, 64);
  OnlineSimOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  const OnlineSimResult rl =
      simulate_online(*model_, cluster_, plan_, light, opt);
  const OnlineSimResult rh =
      simulate_online(*model_, cluster_, plan_, heavy, opt);
  ASSERT_TRUE(rl.ok && rh.ok);
  EXPECT_GE(rh.mean_queue_delay_s, rl.mean_queue_delay_s);
}

}  // namespace
}  // namespace llmpq
