#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baselines.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "cost/cost_provider.hpp"
#include "hw/cluster.hpp"
#include "model/model_spec.hpp"
#include "runtime/engine.hpp"
#include "runtime/transformer.hpp"
#include "serve/degrade.hpp"
#include "serve/online_engine.hpp"
#include "sim/online_sim.hpp"
#include "sim/pipeline_sim.hpp"

namespace llmpq {
namespace {

FaultRule rule(std::string site, FaultKind kind, double probability = 1.0,
               int max_fires = std::numeric_limits<int>::max(),
               double delay_ms = 0.0) {
  FaultRule r;
  r.site = std::move(site);
  r.kind = kind;
  r.probability = probability;
  r.max_fires = max_fires;
  r.delay_ms = delay_ms;
  return r;
}

/// Arms the process-wide injector for one test scope; always disarms, so a
/// failing assertion cannot leak chaos into the next test.
struct ArmedPlan {
  explicit ArmedPlan(const FaultPlan& plan) {
    FaultInjector::instance().arm(plan);
  }
  ~ArmedPlan() { FaultInjector::instance().disarm(); }
};

// ---------------------------------------------------------------------------
// FaultLottery: the deterministic decision core.
// ---------------------------------------------------------------------------

TEST(FaultLottery, SameSeedSamePlanSameDecisions) {
  FaultPlan plan;
  plan.seed = 42;
  plan.rules.push_back(rule("site.a", FaultKind::kThrow, 0.3));
  FaultLottery a(plan), b(plan);
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(a.check("site.a").kind, b.check("site.a").kind) << "draw " << i;
  EXPECT_EQ(a.total_fires(), b.total_fires());
  EXPECT_GT(a.total_fires(), 0u);
  EXPECT_LT(a.total_fires(), 500u);
}

TEST(FaultLottery, DifferentSeedsDiverge) {
  FaultPlan p1, p2;
  p1.seed = 1;
  p2.seed = 2;
  p1.rules.push_back(rule("s", FaultKind::kThrow, 0.5));
  p2.rules = p1.rules;
  FaultLottery a(p1), b(p2);
  int diff = 0;
  for (int i = 0; i < 200; ++i)
    diff += a.check("s").kind != b.check("s").kind;
  EXPECT_GT(diff, 0);
}

TEST(FaultLottery, ProbabilityRoughlyHonored) {
  FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back(rule("s", FaultKind::kThrow, 0.25));
  FaultLottery l(plan);
  for (int i = 0; i < 10000; ++i) l.check("s");
  const double rate = static_cast<double>(l.total_fires()) / 10000.0;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultLottery, AfterSkipsLeadingEvaluations) {
  FaultPlan plan;
  FaultRule r = rule("s", FaultKind::kThrow);
  r.after = 3;
  plan.rules.push_back(r);
  FaultLottery l(plan);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(l.check("s").kind, FaultKind::kNone) << "warmup " << i;
  EXPECT_EQ(l.check("s").kind, FaultKind::kThrow);
}

TEST(FaultLottery, MaxFiresBudgetIsExact) {
  FaultPlan plan;
  plan.rules.push_back(rule("s", FaultKind::kThrow, 1.0, /*max_fires=*/2));
  FaultLottery l(plan);
  int fired = 0;
  for (int i = 0; i < 50; ++i)
    fired += l.check("s").kind == FaultKind::kThrow;
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(l.rule_fires(0), 2u);
}

TEST(FaultLottery, PrefixWildcardMatchesSiteFamily) {
  FaultPlan plan;
  plan.rules.push_back(rule("stage.*", FaultKind::kDelay, 1.0,
                            std::numeric_limits<int>::max(), 5.0));
  FaultLottery l(plan);
  EXPECT_EQ(l.check("stage.work").kind, FaultKind::kDelay);
  EXPECT_EQ(l.check("stage.qgemm").kind, FaultKind::kDelay);
  EXPECT_EQ(l.check("engine.embed").kind, FaultKind::kNone);
}

TEST(FaultLottery, FirstMatchingRuleWins) {
  FaultPlan plan;
  plan.rules.push_back(rule("s", FaultKind::kDelay, 1.0,
                            std::numeric_limits<int>::max(), 5.0));
  plan.rules.push_back(rule("s", FaultKind::kThrow));
  FaultLottery l(plan);
  EXPECT_EQ(l.check("s").kind, FaultKind::kDelay);
}

TEST(FaultLottery, ConcurrentChecksFireDeterministicCount) {
  // The fire *count* is a pure function of (seed, rule, #evaluations) even
  // when the evaluations race: each thread draws distinct counter values.
  FaultPlan plan;
  plan.seed = 9;
  plan.rules.push_back(rule("s", FaultKind::kThrow, 0.5));
  std::uint64_t expected = 0;
  {
    FaultLottery serial(plan);
    for (int i = 0; i < 4000; ++i) serial.check("s");
    expected = serial.total_fires();
  }
  FaultLottery shared(plan);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) shared.check("s");
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared.total_fires(), expected);
}

// ---------------------------------------------------------------------------
// FaultPlan JSON round-trip and strict validation.
// ---------------------------------------------------------------------------

TEST(FaultPlan, JsonRoundTripPreservesEveryField) {
  FaultPlan plan;
  plan.seed = 123;
  FaultRule r = rule("stage.work", FaultKind::kDelay, 0.25, 3, 12.5);
  r.after = 2;
  r.message = "chaos";
  plan.rules.push_back(r);
  plan.rules.push_back(rule("engine.mailbox", FaultKind::kDrop, 0.5));

  const FaultPlan back = FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(back.seed, 123u);
  ASSERT_EQ(back.rules.size(), 2u);
  EXPECT_EQ(back.rules[0].site, "stage.work");
  EXPECT_EQ(back.rules[0].kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(back.rules[0].probability, 0.25);
  EXPECT_EQ(back.rules[0].after, 2);
  EXPECT_EQ(back.rules[0].max_fires, 3);
  EXPECT_DOUBLE_EQ(back.rules[0].delay_ms, 12.5);
  EXPECT_EQ(back.rules[0].message, "chaos");
  EXPECT_EQ(back.rules[1].kind, FaultKind::kDrop);
  EXPECT_EQ(back.rules[1].max_fires, std::numeric_limits<int>::max());
}

TEST(FaultPlan, FromJsonRejectsMalformedPlans) {
  EXPECT_THROW(FaultPlan::from_json("[]"), InvalidArgumentError);
  EXPECT_THROW(FaultPlan::from_json("{}"), InvalidArgumentError);
  EXPECT_THROW(FaultPlan::from_json(
                   R"({"rules":[{"site":"s","kind":"explode"}]})"),
               InvalidArgumentError);
  EXPECT_THROW(FaultPlan::from_json(
                   R"({"rules":[{"kind":"throw"}]})"),
               InvalidArgumentError);
  EXPECT_THROW(FaultPlan::from_json(
                   R"({"rules":[{"site":"s","kind":"throw","probability":1.5}]})"),
               InvalidArgumentError);
  // A delay rule without a positive delay_ms is a no-op plan bug.
  EXPECT_THROW(FaultPlan::from_json(
                   R"({"rules":[{"site":"s","kind":"delay"}]})"),
               InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// kSlow: the sustained-straggler fault kind.
// ---------------------------------------------------------------------------

TEST(SlowFault, WindowOpensAtOnsetAndClosesAfterDuration) {
  FaultPlan plan;
  FaultRule r = rule("s", FaultKind::kSlow, 1.0,
                     std::numeric_limits<int>::max(), 5.0);
  r.after = 2;
  r.duration = 3;
  plan.rules.push_back(r);
  FaultLottery l(plan);
  // Evaluations 0-1 precede the onset, 2-4 are the slow window, 5+ are
  // past it — the site recovers.
  for (int i = 0; i < 2; ++i)
    EXPECT_EQ(l.check("s").kind, FaultKind::kNone) << "eval " << i;
  for (int i = 2; i < 5; ++i) {
    const FaultAction a = l.check("s");
    EXPECT_EQ(a.kind, FaultKind::kSlow) << "eval " << i;
    EXPECT_DOUBLE_EQ(a.delay_s, 0.005);
  }
  for (int i = 5; i < 10; ++i)
    EXPECT_EQ(l.check("s").kind, FaultKind::kNone) << "eval " << i;
}

TEST(SlowFault, DefaultDurationIsSlowForever) {
  FaultPlan plan;
  plan.rules.push_back(rule("s", FaultKind::kSlow, 1.0,
                            std::numeric_limits<int>::max(), 1.0));
  FaultLottery l(plan);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(l.check("s").kind, FaultKind::kSlow) << "eval " << i;
}

TEST(SlowFault, ProbabilisticOnsetIsPositionalNotOrderDependent) {
  // The onset draw is a pure hash of (seed, rule, evaluation index), so a
  // lottery hammered by racing threads lands on the same onset — and the
  // same total slow evaluations — as a serial run of the same length.
  FaultPlan plan;
  plan.seed = 77;
  FaultRule r = rule("s", FaultKind::kSlow, 0.01,
                     std::numeric_limits<int>::max(), 1.0);
  r.duration = 50;
  plan.rules.push_back(r);

  std::uint64_t expected = 0;
  {
    FaultLottery serial(plan);
    for (int i = 0; i < 4000; ++i) serial.check("s");
    expected = serial.total_fires();
  }
  EXPECT_GT(expected, 0u);
  EXPECT_LE(expected, 50u);  // bounded by the window
  FaultLottery shared(plan);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) shared.check("s");
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared.total_fires(), expected);
}

TEST(SlowFault, JsonRoundTripKeepsDurationAndValidates) {
  FaultPlan plan;
  FaultRule r = rule("serve.stage.1", FaultKind::kSlow, 0.5,
                     std::numeric_limits<int>::max(), 25.0);
  r.after = 8;
  r.duration = 4;
  plan.rules.push_back(r);
  plan.rules.push_back(rule("s2", FaultKind::kSlow, 1.0,
                            std::numeric_limits<int>::max(), 1.0));

  const FaultPlan back = FaultPlan::from_json(plan.to_json());
  ASSERT_EQ(back.rules.size(), 2u);
  EXPECT_EQ(back.rules[0].kind, FaultKind::kSlow);
  EXPECT_EQ(back.rules[0].duration, 4);
  EXPECT_EQ(back.rules[0].after, 8);
  EXPECT_DOUBLE_EQ(back.rules[0].delay_ms, 25.0);
  // Omitted duration round-trips as "slow forever".
  EXPECT_EQ(back.rules[1].duration, std::numeric_limits<int>::max());

  // A slow rule without a positive delay is a no-op plan bug, and a
  // non-positive duration is meaningless.
  EXPECT_THROW(FaultPlan::from_json(
                   R"({"rules":[{"site":"s","kind":"slow"}]})"),
               InvalidArgumentError);
  EXPECT_THROW(
      FaultPlan::from_json(
          R"({"rules":[{"site":"s","kind":"slow","delay_ms":1,"duration":0}]})"),
      InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// FaultInjector: the process-wide singleton behind FAULT_POINT/FAULT_DROP.
// ---------------------------------------------------------------------------

TEST(FaultInjector, DisarmedPointsAreNoops) {
  ASSERT_FALSE(FaultInjector::armed());
  FAULT_POINT("anything.at.all");
  EXPECT_FALSE(FAULT_DROP("anything.at.all"));
}

TEST(FaultInjector, ArmFireDisarmRecordsLog) {
  FaultPlan plan;
  plan.rules.push_back(rule("test.site", FaultKind::kThrow, 1.0, 1));
  const std::uint64_t before = FaultInjector::instance().fires();
  {
    ArmedPlan armed(plan);
    EXPECT_TRUE(FaultInjector::armed());
    EXPECT_THROW(FAULT_POINT("test.site"), InjectedFault);
    FAULT_POINT("test.site");  // budget exhausted: no-op
    EXPECT_EQ(FaultInjector::instance().fires(), before + 1);
    const std::vector<FaultFire> log = FaultInjector::instance().fire_log();
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log.back().site, "test.site");
    EXPECT_EQ(log.back().kind, FaultKind::kThrow);
  }
  EXPECT_FALSE(FaultInjector::armed());
}

TEST(FaultInjector, InjectedFaultNamesItsSite) {
  FaultPlan plan;
  FaultRule r = rule("test.named", FaultKind::kThrow, 1.0, 1);
  r.message = "boom";
  plan.rules.push_back(r);
  ArmedPlan armed(plan);
  try {
    FAULT_POINT("test.named");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "test.named");
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Scheduler fault policy: deadlines, backpressure, retry/backoff.
// ---------------------------------------------------------------------------

ServeRequest req(int id, double arrival, int prompt, int gen) {
  ServeRequest r;
  r.id = id;
  r.arrival_s = arrival;
  r.prompt_len = prompt;
  r.gen_tokens = gen;
  return r;
}

TEST(SchedulerFaults, QueuedRequestTimesOutAtArrivalPlusDeadline) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.deadline_s = 5.0;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 8, 2));
  s.close();
  // First poll lands long after the deadline: the request must expire
  // stamped at arrival + deadline, not at the poll time.
  EXPECT_EQ(s.next(10.0).kind, SchedulerAction::Kind::kDone);
  ASSERT_EQ(s.finished().size(), 1u);
  EXPECT_EQ(s.finished()[0].outcome, RequestOutcome::kTimedOut);
  EXPECT_DOUBLE_EQ(s.finished()[0].finish_s, 5.0);
  EXPECT_EQ(s.outcomes().timed_out, 1);
}

TEST(SchedulerFaults, WaitFoldsInDeadlineExpiryWakeup) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kStaticBatching;
  opt.batch_size = 16;
  opt.max_wait_s = 100.0;
  opt.deadline_s = 5.0;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 8, 2));
  s.close();
  // The stale timer alone would sleep to t=100 — past the request's
  // deadline. The wait must wake in time to time it out.
  const SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kWait);
  EXPECT_DOUBLE_EQ(a.wait_until, 5.0);
  EXPECT_EQ(s.next(6.0).kind, SchedulerAction::Kind::kDone);
  EXPECT_EQ(s.outcomes().timed_out, 1);
}

TEST(SchedulerFaults, AdmissionBoundRejectsOverflowInArrivalOrder) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.admission_capacity = 2;
  opt.max_batch = 2;
  ServeScheduler s(opt);
  for (int i = 0; i < 4; ++i) s.submit(req(i, 0.0, 8, 1));
  s.close();

  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.request_ids, (std::vector<int>{0, 1}));
  s.complete(a.decision, 1.0);
  EXPECT_EQ(s.next(1.0).kind, SchedulerAction::Kind::kDone);

  const OutcomeCounts oc = s.outcomes();
  EXPECT_EQ(oc.completed, 2);
  EXPECT_EQ(oc.rejected, 2);
  // The overflow arrivals (ids 2, 3) bounced on arrival, at arrival time.
  std::set<int> rejected_ids;
  for (const RequestStats& r : s.finished())
    if (r.outcome == RequestOutcome::kRejected) {
      rejected_ids.insert(r.id);
      EXPECT_DOUBLE_EQ(r.finish_s, 0.0);
    }
  EXPECT_EQ(rejected_ids, (std::set<int>{2, 3}));
}

TEST(SchedulerFaults, PrefillRetriesWithBackoffThenFails) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.max_retries = 1;
  opt.retry_backoff_s = 0.05;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 8, 2));
  s.close();

  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  s.fail(a.decision, 0.0);

  // Backoff window: nothing dispatches before 0.05.
  a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kWait);
  EXPECT_DOUBLE_EQ(a.wait_until, 0.05);

  a = s.next(0.05);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.request_ids, std::vector<int>{0});
  s.fail(a.decision, 0.05);  // second failure exhausts max_retries = 1

  EXPECT_EQ(s.next(1.0).kind, SchedulerAction::Kind::kDone);
  ASSERT_EQ(s.finished().size(), 1u);
  EXPECT_EQ(s.finished()[0].outcome, RequestOutcome::kFailed);
  EXPECT_EQ(s.finished()[0].retries, 1);
  EXPECT_EQ(s.outcomes().failed, 1);
  EXPECT_EQ(s.outcomes().retries, 1);
}

TEST(SchedulerFaults, BackoffDoublesAndCaps) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.max_retries = 10;
  opt.retry_backoff_s = 0.1;
  opt.retry_backoff_max_s = 0.4;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 8, 2));
  s.close();

  // Expected release times after each failure: 0.1, 0.2, 0.4, 0.4 (cap).
  const double expected[] = {0.1, 0.2, 0.4, 0.4};
  double t = 0.0;
  for (double backoff : expected) {
    SchedulerAction a = s.next(t);
    ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
    s.fail(a.decision, t);
    a = s.next(t);
    ASSERT_EQ(a.kind, SchedulerAction::Kind::kWait);
    EXPECT_NEAR(a.wait_until - t, backoff, 1e-12);
    t = a.wait_until;
  }
}

TEST(SchedulerFaults, DecodeRoundRetriedWholesale) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.max_retries = 2;
  opt.retry_backoff_s = 0.05;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 8, 3));
  s.close();

  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  ASSERT_EQ(a.decision.phase, ServePhase::kPrefillPass);
  s.complete(a.decision, 1.0);

  a = s.next(1.0);
  ASSERT_EQ(a.decision.phase, ServePhase::kDecodePass);
  const int ctx = a.decision.max_context;
  s.fail(a.decision, 1.0);

  // Decode rounds are idempotent at the scheduler level: after the backoff
  // the SAME round (same context) is retried, and the request survives.
  a = s.next(1.05);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  ASSERT_EQ(a.decision.phase, ServePhase::kDecodePass);
  EXPECT_EQ(a.decision.max_context, ctx);
  s.complete(a.decision, 1.2);

  a = s.next(1.2);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.max_context, ctx + 1);
  s.complete(a.decision, 1.4);
  EXPECT_EQ(s.next(1.4).kind, SchedulerAction::Kind::kDone);

  ASSERT_EQ(s.finished().size(), 1u);
  EXPECT_EQ(s.finished()[0].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(s.finished()[0].retries, 1);
}

TEST(SchedulerFaults, ConservationAcrossMixedOutcomes) {
  // Deadline + bounded admission + failures in one run: every submitted id
  // must land in finished() exactly once.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.deadline_s = 2.0;
  opt.admission_capacity = 4;
  opt.max_batch = 2;
  opt.max_retries = 1;
  opt.retry_backoff_s = 0.05;
  ServeScheduler s(opt);
  const int n = 8;
  for (int i = 0; i < n; ++i)
    s.submit(req(i, 0.1 * i, 8, 2));
  s.close();

  double t = 0.0;
  int dispatches = 0;
  for (;;) {
    SchedulerAction a = s.next(t);
    if (a.kind == SchedulerAction::Kind::kDone) break;
    if (a.kind == SchedulerAction::Kind::kWait) {
      ASSERT_TRUE(std::isfinite(a.wait_until));
      t = std::max(t, a.wait_until);
      continue;
    }
    // Fail every third dispatch to stir retries into the mix.
    if (++dispatches % 3 == 0) {
      s.fail(a.decision, t);
    } else {
      t += 0.3;
      s.complete(a.decision, t);
    }
  }

  std::set<int> seen;
  for (const RequestStats& r : s.finished()) {
    EXPECT_TRUE(seen.insert(r.id).second) << "id finished twice: " << r.id;
  }
  EXPECT_EQ(static_cast<int>(seen.size()), n);
  const OutcomeCounts oc = s.outcomes();
  EXPECT_EQ(oc.completed + oc.timed_out + oc.rejected + oc.failed, n);
}

// ---------------------------------------------------------------------------
// Runtime: fault recovery on the real threaded engine.
// ---------------------------------------------------------------------------

ModelSpec tiny_spec() {
  ModelSpec m;
  m.name = "tiny-fault";
  m.family = "opt";
  m.hidden = 32;
  m.ffn = 128;
  m.heads = 4;
  m.layers = 6;
  m.vocab = 96;
  m.max_pos = 64;
  return m;
}

std::vector<TokenId> make_prompt(Rng& rng, const ModelSpec& m, int len) {
  std::vector<TokenId> p;
  for (int t = 0; t < len; ++t)
    p.push_back(static_cast<TokenId>(rng.uniform_int(0, m.vocab - 1)));
  return p;
}

class EngineFaultTest : public ::testing::Test {
 protected:
  EngineFaultTest()
      : spec_(tiny_spec()),
        weights_(build_random_model(
            spec_, std::vector<int>(static_cast<std::size_t>(spec_.layers), 8),
            2024)),
        engine_(weights_, {{0, 3}, {3, 6}}, 2, 2) {
    Rng rng(3);
    for (int i = 0; i < 3; ++i) prompts_.push_back(make_prompt(rng, spec_, 8));
    reference_ = reference_generate(weights_, prompts_, 4);
  }
  ModelSpec spec_;
  ModelWeights weights_;
  PipelineEngine engine_;
  std::vector<std::vector<TokenId>> prompts_;
  std::vector<std::vector<TokenId>> reference_;
};

TEST_F(EngineFaultTest, StageThrowDrainsReportsLostRowsStaysHealthy) {
  FaultPlan plan;
  FaultRule r = rule("stage.work", FaultKind::kThrow, 1.0, 1);
  r.message = "chaos";
  plan.rules.push_back(r);
  {
    ArmedPlan armed(plan);
    EXPECT_THROW(engine_.generate(prompts_, 4), InjectedFault);
  }
  // Poisoned-message protocol: the failure drained, the engine is reusable
  // without restart(), and the failure report names the lost rows.
  EXPECT_TRUE(engine_.healthy());
  const EngineFailureInfo info = engine_.last_failure();
  EXPECT_TRUE(info.failed);
  EXPECT_FALSE(info.needs_restart);
  EXPECT_NE(info.what.find("stage.work"), std::string::npos);
  ASSERT_FALSE(info.lost_rows.empty());
  for (int row : info.lost_rows) {
    EXPECT_GE(row, 0);
    EXPECT_LT(row, static_cast<int>(prompts_.size()));
  }
  EXPECT_EQ(engine_.generate(prompts_, 4), reference_);
  EXPECT_FALSE(engine_.last_failure().failed);  // success clears the report
}

TEST_F(EngineFaultTest, QgemmFaultTravelsThePoisonedMessagePath) {
  FaultPlan plan;
  plan.rules.push_back(rule("stage.qgemm", FaultKind::kThrow, 1.0, 1));
  {
    ArmedPlan armed(plan);
    EXPECT_THROW(engine_.generate(prompts_, 4), InjectedFault);
  }
  EXPECT_TRUE(engine_.healthy());
  EXPECT_EQ(engine_.generate(prompts_, 4), reference_);
}

TEST_F(EngineFaultTest, DroppedMailboxMessageHitsDeadlineRestartRecovers) {
  FaultPlan plan;
  plan.rules.push_back(rule("engine.mailbox", FaultKind::kDrop, 1.0, 1));
  GenerateOptions gopts;
  gopts.deadline_s = 0.3;
  {
    ArmedPlan armed(plan);
    try {
      engine_.generate(prompts_, 4, gopts);
      FAIL() << "expected PipelineAbortError";
    } catch (const PipelineAbortError& e) {
      EXPECT_TRUE(e.timed_out());
    }
  }
  EXPECT_FALSE(engine_.healthy());
  EXPECT_TRUE(engine_.last_failure().needs_restart);
  // A broken engine refuses work until restarted.
  EXPECT_THROW(engine_.generate(prompts_, 4), Error);
  // restart() rebuilds workers/mailboxes but reuses weights and KV
  // allocations — the recovered output must be reference-exact.
  engine_.restart();
  EXPECT_TRUE(engine_.healthy());
  EXPECT_FALSE(engine_.last_failure().failed);
  EXPECT_EQ(engine_.generate(prompts_, 4), reference_);
}

TEST_F(EngineFaultTest, CancelTokenAbortsWithoutTimeout) {
  GenerateOptions gopts;
  gopts.cancel.cancel();  // pre-cancelled: abort at the first poll
  try {
    engine_.generate(prompts_, 4, gopts);
    FAIL() << "expected PipelineAbortError";
  } catch (const PipelineAbortError& e) {
    EXPECT_FALSE(e.timed_out());
  }
  EXPECT_FALSE(engine_.healthy());
  engine_.restart();
  EXPECT_EQ(engine_.generate(prompts_, 4), reference_);
}

TEST_F(EngineFaultTest, KvAllocFailureSurfacesBeforeAnyInFlightWork) {
  FaultPlan plan;
  plan.rules.push_back(
      rule("engine.kv_alloc", FaultKind::kAllocFail, 1.0, 1));
  {
    ArmedPlan armed(plan);
    EXPECT_THROW(engine_.generate(prompts_, 4), std::bad_alloc);
  }
  // Cache (re)allocation precedes any micro-batch push, so the engine is
  // still healthy — this is the memory-pressure signal the serving loop's
  // degradation ladder consumes.
  EXPECT_TRUE(engine_.healthy());
  EXPECT_EQ(engine_.generate(prompts_, 4), reference_);
}

TEST_F(EngineFaultTest, StageDelayIsAStragglerNotAFailure) {
  FaultPlan plan;
  plan.rules.push_back(rule("stage.work", FaultKind::kDelay, 1.0, 1, 50.0));
  ArmedPlan armed(plan);
  EXPECT_EQ(engine_.generate(prompts_, 4), reference_);
  EXPECT_TRUE(engine_.healthy());
}

// ---------------------------------------------------------------------------
// Serving resilience: retry/backoff, degradation, and live fail-fast.
// ---------------------------------------------------------------------------

class ServeFaultTest : public EngineFaultTest {
 protected:
  std::vector<OnlineTraceRequest> burst_trace(int n, int gen) {
    Rng rng(11);
    std::vector<OnlineTraceRequest> trace;
    for (int i = 0; i < n; ++i) {
      OnlineTraceRequest t;
      t.prompt = make_prompt(rng, spec_, 8);
      t.gen_tokens = gen;
      trace.push_back(std::move(t));
    }
    return trace;
  }
};

TEST_F(ServeFaultTest, DispatchFaultRetriedToCompletion) {
  FaultPlan plan;
  plan.rules.push_back(rule("serve.dispatch", FaultKind::kThrow, 1.0, 1));
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.max_retries = 3;
  opt.scheduler.retry_backoff_s = 0.001;
  ArmedPlan armed(plan);
  const OnlineReport rep = serve_trace(engine_, burst_trace(3, 3), opt);
  EXPECT_EQ(rep.completed, 3);
  EXPECT_EQ(rep.failed, 0);
  EXPECT_GE(rep.retries, 1);
  EXPECT_EQ(rep.engine_restarts, 0);  // the engine itself never faulted
}

TEST_F(ServeFaultTest, MemFaultsWalkTheDegradationLadder) {
  FaultPlan plan;
  plan.rules.push_back(
      rule("engine.kv_alloc", FaultKind::kAllocFail, 1.0, 2));
  // The replacement engine models the next rung down the ladder: same
  // weights, halved micro-batches (a lower-bitwidth plan works the same
  // way — any cheaper engine the caller can build).
  PipelineEngine fallback(weights_, {{0, 3}, {3, 6}}, 1, 1);
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.max_retries = 4;
  opt.scheduler.retry_backoff_s = 0.001;
  opt.degrade_after_mem_faults = 2;
  opt.degrade = [&](int level) -> PipelineEngine* {
    return level == 1 ? &fallback : nullptr;
  };
  ArmedPlan armed(plan);
  const OnlineReport rep = serve_trace(engine_, burst_trace(3, 3), opt);
  EXPECT_EQ(rep.completed, 3);
  EXPECT_EQ(rep.mem_faults, 2);
  EXPECT_EQ(rep.degrades, 1);
  EXPECT_GE(rep.retries, 1);
}

TEST(DegradeLadderTest, DefaultLadderShedsMetadataThenBitsThenMicrobatch) {
  const std::vector<int> bits = {8, 8, 4, 4, 16, 3};
  const auto steps =
      default_degrade_ladder(bits, QuantFormat::kGroup32, 2, 2);
  ASSERT_EQ(steps.size(), 5u);
  // Rung 1: group metadata gone, everything else untouched.
  EXPECT_EQ(steps[0].layer_bits, bits);
  EXPECT_EQ(steps[0].format, QuantFormat::kPerChannel);
  EXPECT_EQ(steps[0].prefill_micro_batch, 2);
  // Rungs 2-4: uniform bit descent toward the 3-bit floor.
  EXPECT_EQ(steps[1].layer_bits, (std::vector<int>{4, 4, 3, 3, 8, 3}));
  EXPECT_EQ(steps[2].layer_bits, (std::vector<int>{3, 3, 3, 3, 4, 3}));
  EXPECT_EQ(steps[3].layer_bits, (std::vector<int>{3, 3, 3, 3, 3, 3}));
  // Final rung: weights can shrink no further, halve the micro-batches.
  EXPECT_EQ(steps[4].layer_bits, steps[3].layer_bits);
  EXPECT_EQ(steps[4].prefill_micro_batch, 1);
  EXPECT_EQ(steps[4].decode_micro_batch, 1);
  // Already-per-channel start skips the metadata rung.
  EXPECT_EQ(default_degrade_ladder(bits, QuantFormat::kPerChannel, 1, 1)
                .size(),
            3u);
}

TEST(DegradeLadderTest, EveryRungIsMonotonicallyCheaper) {
  // Level monotonicity: walking the ladder must never raise any layer's
  // bitwidth or grow a micro-batch — each rung strictly sheds something.
  const std::vector<int> bits = {16, 8, 4, 3, 8, 16};
  const auto steps = default_degrade_ladder(bits, QuantFormat::kGroup32, 4, 2);
  ASSERT_FALSE(steps.empty());
  std::vector<int> prev_bits = bits;
  int prev_pre = 4, prev_dec = 2;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    ASSERT_EQ(steps[i].layer_bits.size(), bits.size()) << "rung " << i;
    bool shed_something = steps[i].format != QuantFormat::kGroup32 && i == 0;
    for (std::size_t l = 0; l < bits.size(); ++l) {
      EXPECT_LE(steps[i].layer_bits[l], prev_bits[l])
          << "rung " << i << " raised layer " << l;
      shed_something |= steps[i].layer_bits[l] < prev_bits[l];
    }
    EXPECT_LE(steps[i].prefill_micro_batch, prev_pre) << "rung " << i;
    EXPECT_LE(steps[i].decode_micro_batch, prev_dec) << "rung " << i;
    shed_something |= steps[i].prefill_micro_batch < prev_pre ||
                      steps[i].decode_micro_batch < prev_dec;
    EXPECT_TRUE(shed_something) << "rung " << i << " changed nothing";
    prev_bits = steps[i].layer_bits;
    prev_pre = steps[i].prefill_micro_batch;
    prev_dec = steps[i].decode_micro_batch;
  }
  // An already-minimal start (3-bit, per-channel, micro-batch 1) has no
  // rungs at all: the hook exhausts immediately.
  EXPECT_TRUE(default_degrade_ladder(std::vector<int>(6, 3),
                                     QuantFormat::kPerChannel, 1, 1)
                  .empty());
}

TEST(DegradeLadderTest, LazilyBuildsStableEnginesAndExhausts) {
  const ModelSpec spec = tiny_spec();
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 8);
  DegradeLadder ladder(spec, {{0, 3}, {3, 6}}, 2024,
                       default_degrade_ladder(bits, QuantFormat::kGroup64,
                                              2, 2));
  PipelineEngine* l1 = ladder.engine_for_level(1);
  ASSERT_NE(l1, nullptr);
  EXPECT_EQ(ladder.engine_for_level(1), l1);  // built once, stable address
  // Every rung serves the same masters requantized: level 1 (8-bit
  // per-channel) generates exactly what a directly-built per-channel
  // model does under the ladder's seed.
  Rng rng(3);
  std::vector<std::vector<TokenId>> prompts = {make_prompt(rng, spec, 8)};
  const ModelWeights direct = build_random_model(spec, bits, 2024);
  EXPECT_EQ(l1->generate(prompts, 4), reference_generate(direct, prompts, 4));
  EXPECT_NE(ladder.engine_for_level(
                static_cast<int>(ladder.steps().size())),
            nullptr);
  EXPECT_EQ(ladder.engine_for_level(
                static_cast<int>(ladder.steps().size()) + 1),
            nullptr);
  EXPECT_EQ(ladder.engine_for_level(0), nullptr);
}

TEST_F(ServeFaultTest, LadderBackedDegradeServesThroughMemPressure) {
  // End-to-end: repeated KV allocation faults push the serving loop onto
  // the ladder's first rung, and the trace still completes.
  FaultPlan plan;
  plan.rules.push_back(
      rule("engine.kv_alloc", FaultKind::kAllocFail, 1.0, 2));
  const std::vector<int> bits(static_cast<std::size_t>(spec_.layers), 8);
  DegradeLadder ladder(spec_, {{0, 3}, {3, 6}}, 2024,
                       default_degrade_ladder(bits, QuantFormat::kGroup32,
                                              2, 2));
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.max_retries = 4;
  opt.scheduler.retry_backoff_s = 0.001;
  opt.degrade_after_mem_faults = 2;
  opt.degrade = ladder.hook();
  ArmedPlan armed(plan);
  const OnlineReport rep = serve_trace(engine_, burst_trace(3, 3), opt);
  EXPECT_EQ(rep.completed, 3);
  EXPECT_EQ(rep.mem_faults, 2);
  EXPECT_EQ(rep.degrades, 1);
}

/// Seed list for the chaos sweep. The default keeps the tier-1 run fast;
/// nightly CI sets LLMPQ_CHAOS_SEEDS=N to sweep seeds 1..N.
std::vector<std::uint64_t> chaos_seeds() {
  if (const char* env = std::getenv("LLMPQ_CHAOS_SEEDS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) {
      std::vector<std::uint64_t> seeds;
      for (long i = 1; i <= n; ++i)
        seeds.push_back(static_cast<std::uint64_t>(i));
      return seeds;
    }
  }
  return {1, 7, 23};
}

/// When LLMPQ_CHAOS_ARTIFACT_DIR is set (nightly CI), dumps the failing
/// seed's fault plan and outcome tallies as JSON so the run is
/// reproducible from the uploaded artifact alone.
void dump_chaos_artifact(const std::string& test, std::uint64_t seed,
                         const FaultPlan& plan, const OnlineReport& rep) {
  const char* dir = std::getenv("LLMPQ_CHAOS_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::ostringstream path;
  path << dir << "/" << test << "_seed" << seed << ".json";
  std::ofstream out(path.str());
  out << "{\n  \"test\": \"" << test << "\",\n  \"seed\": " << seed
      << ",\n  \"fault_plan\": " << plan.to_json()
      << ",\n  \"outcomes\": {\"completed\": " << rep.completed
      << ", \"timed_out\": " << rep.timed_out
      << ", \"rejected\": " << rep.rejected << ", \"failed\": " << rep.failed
      << ", \"retries\": " << rep.retries
      << ", \"engine_restarts\": " << rep.engine_restarts
      << ", \"preemptions\": " << rep.preemptions << "}\n}\n";
}

TEST_F(ServeFaultTest, ChaosSweepConservesEveryRequest) {
  // The headline chaos invariant, swept across seeds: under probabilistic
  // multi-site faults every submitted request terminates exactly once as
  // completed/timed-out/rejected/failed, and the run finishes (bounded
  // wall-clock — enforced by the suite's ctest timeout).
  for (std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const bool failed_before = HasFailure();
    FaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back(rule("stage.work", FaultKind::kThrow, 0.4, 2));
    plan.rules.push_back(rule("serve.dispatch", FaultKind::kThrow, 0.2, 2));
    plan.rules.push_back(rule("engine.mailbox", FaultKind::kDrop, 0.5, 1));

    OnlineEngineOptions opt;
    opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
    opt.scheduler.max_batch = 4;
    opt.scheduler.max_retries = 4;
    opt.scheduler.retry_backoff_s = 0.001;
    opt.dispatch_deadline_s = 0.3;  // converts a dropped message into a
                                    // restartable fault
    const int n = 5;
    OnlineReport rep;
    {
      ArmedPlan armed(plan);
      rep = serve_trace(engine_, burst_trace(n, 3), opt);
    }
    if (!engine_.healthy()) engine_.restart();

    ASSERT_EQ(static_cast<int>(rep.requests.size()), n);
    std::set<int> seen;
    for (const RequestStats& r : rep.requests)
      EXPECT_TRUE(seen.insert(r.id).second) << "id finished twice: " << r.id;
    EXPECT_EQ(rep.completed + rep.timed_out + rep.rejected + rep.failed, n);
    // Completed requests must carry real output.
    for (const RequestStats& r : rep.requests) {
      if (r.outcome == RequestOutcome::kCompleted) {
        EXPECT_EQ(rep.generated[static_cast<std::size_t>(r.id)].size(), 3u);
      }
    }
    if (!failed_before && HasFailure())
      dump_chaos_artifact("ChaosSweepConservesEveryRequest", seed, plan, rep);
  }
}

TEST_F(ServeFaultTest, LiveLoopSurvivesInjectedDispatchFaults) {
  FaultPlan plan;
  plan.rules.push_back(rule("stage.work", FaultKind::kThrow, 1.0, 1));
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.max_retries = 3;
  opt.scheduler.retry_backoff_s = 0.001;
  ArmedPlan armed(plan);
  OnlineEngine server(engine_, opt);
  Rng rng(5);
  for (int i = 0; i < 2; ++i) server.submit(make_prompt(rng, spec_, 8), 3);
  server.close();
  const OnlineReport rep = server.wait();
  EXPECT_EQ(rep.completed, 2);
  EXPECT_GE(rep.retries, 1);
}

TEST_F(ServeFaultTest, LiveLoopDeathFailsFastAndWaitIsIdempotent) {
  // One dropped message + a zero restart budget kills the serving loop:
  // wait() must rethrow the same error every time (no double-join UB) and
  // submit() must fail fast instead of queueing work nobody will run.
  FaultPlan plan;
  plan.rules.push_back(rule("engine.mailbox", FaultKind::kDrop, 1.0, 1));
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.dispatch_deadline_s = 0.2;
  opt.max_engine_restarts = 0;
  ArmedPlan armed(plan);
  OnlineEngine server(engine_, opt);
  Rng rng(5);
  server.submit(make_prompt(rng, spec_, 8), 3);
  server.close();
  EXPECT_THROW(server.wait(), PipelineAbortError);
  EXPECT_THROW(server.wait(), PipelineAbortError);  // same error, no UB
  EXPECT_THROW(server.submit(make_prompt(rng, spec_, 8), 3), Error);
  // The engine is broken (abort path) but recoverable for the next test.
  engine_.restart();
}

TEST_F(ServeFaultTest, WaitIsIdempotentOnSuccess) {
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  OnlineEngine server(engine_, opt);
  Rng rng(5);
  for (int i = 0; i < 2; ++i) server.submit(make_prompt(rng, spec_, 8), 3);
  server.close();
  const OnlineReport r1 = server.wait();
  const OnlineReport r2 = server.wait();
  EXPECT_EQ(r1.completed, 2);
  EXPECT_EQ(r2.completed, 2);
}

// ---------------------------------------------------------------------------
// Simulators: the same FaultPlan on a virtual clock.
// ---------------------------------------------------------------------------

struct SimSetup {
  PaperCluster pc = paper_cluster(3);
  const ModelSpec& model = model_registry_get(pc.model_name);
  CostProvider cost{model, pc.cluster, CostMode::kProfiled};
  ExecutionPlan plan = pipeedge_plan(cost);
};

TEST(SimFaults, OnlineSimChaosIsDeterministicAndConserving) {
  SimSetup s;
  Rng rng(21);
  const std::vector<OnlineRequest> reqs =
      generate_sharegpt_workload(rng, 20, 4.0);

  OnlineSimOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.deadline_s = 60.0;
  opt.max_retries = 2;
  opt.retry_backoff_s = 0.01;

  FaultPlan plan;
  plan.seed = 5;
  plan.rules.push_back(rule("sim.dispatch", FaultKind::kThrow, 0.3));
  plan.rules.push_back(rule("sim.dispatch", FaultKind::kDelay, 0.2,
                            std::numeric_limits<int>::max(), 40.0));

  const OnlineSimResult a =
      simulate_online(s.model, s.pc.cluster, s.plan, reqs, opt, plan);
  const OnlineSimResult b =
      simulate_online(s.model, s.pc.cluster, s.plan, reqs, opt, plan);
  ASSERT_TRUE(a.ok) << a.error;

  // Bit-identical replay: the lottery is seeded by the plan alone.
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);

  // Conservation under chaos, on the virtual clock.
  EXPECT_EQ(a.completed + a.timed_out + a.rejected + a.failed, 20);
  EXPECT_GT(a.fault_events, 0);
  std::set<int> seen;
  for (const RequestStats& r : a.requests)
    EXPECT_TRUE(seen.insert(r.id).second);
  EXPECT_EQ(seen.size(), 20u);
}

TEST(SimFaults, OnlineSimFaultFreePlanChangesNothing) {
  SimSetup s;
  Rng rng(21);
  const std::vector<OnlineRequest> reqs =
      generate_sharegpt_workload(rng, 10, 4.0);
  OnlineSimOptions opt;
  const OnlineSimResult base =
      simulate_online(s.model, s.pc.cluster, s.plan, reqs, opt);
  const OnlineSimResult with_empty =
      simulate_online(s.model, s.pc.cluster, s.plan, reqs, opt, FaultPlan{});
  ASSERT_TRUE(base.ok);
  EXPECT_EQ(base.completed, with_empty.completed);
  EXPECT_DOUBLE_EQ(base.makespan_s, with_empty.makespan_s);
  EXPECT_EQ(with_empty.fault_events, 0);
  EXPECT_EQ(base.decisions.size(), with_empty.decisions.size());
}

TEST(SimFaults, PipelineSimStragglerInflatesLatency) {
  SimSetup s;
  const SimResult base = simulate_plan(s.model, s.pc.cluster, s.plan);
  ASSERT_TRUE(base.ok) << base.error;

  SimOptions opt;
  opt.faults.rules.push_back(
      rule("sim.stage", FaultKind::kDelay, 1.0, 1, 1000.0));
  const SimResult slow = simulate_plan(s.model, s.pc.cluster, s.plan, opt);
  ASSERT_TRUE(slow.ok) << slow.error;
  // A one-second straggler on the first stage pass sits on the critical
  // path, so end-to-end latency absorbs (at least most of) it.
  EXPECT_GE(slow.e2e_latency_s, base.e2e_latency_s + 0.9);
}

TEST(SimFaults, PipelineSimInjectedFailureFailsTheRun) {
  SimSetup s;
  SimOptions opt;
  opt.faults.rules.push_back(rule("sim.stage", FaultKind::kThrow, 1.0, 1));
  const SimResult r = simulate_plan(s.model, s.pc.cluster, s.plan, opt);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("injected"), std::string::npos);
}

}  // namespace
}  // namespace llmpq
