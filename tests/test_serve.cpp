#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.hpp"
#include "common/error.hpp"
#include "runtime/transformer.hpp"
#include "serve/online_engine.hpp"
#include "sim/online_sim.hpp"

namespace llmpq {
namespace {

ServeRequest req(int id, double arrival, int prompt, int gen) {
  ServeRequest r;
  r.id = id;
  r.arrival_s = arrival;
  r.prompt_len = prompt;
  r.gen_tokens = gen;
  return r;
}

// ---------------------------------------------------------------------------
// Shared scheduler: pure decision logic, driven with explicit clock values.
// ---------------------------------------------------------------------------

TEST(ServeScheduler, StaleDeadlineHonoredExactlyForLoneRequest) {
  // Regression for the stale-timer bug: the old simulator waited for the
  // *next arrival*, so a lone request (or a tail request with a distant
  // successor) never went stale. A single request must dispatch at exactly
  // arrival + max_wait_s.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kStaticBatching;
  opt.batch_size = 16;
  opt.max_wait_s = 5.0;
  ServeScheduler s(opt);
  s.submit(req(0, 1.0, 10, 4));
  s.close();

  SchedulerAction a = s.next(1.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kWait);
  EXPECT_DOUBLE_EQ(a.wait_until, 6.0);  // arrival + max_wait_s

  a = s.next(6.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.request_ids, std::vector<int>{0});
  s.complete(a.decision, 7.5);
  EXPECT_EQ(s.next(7.5).kind, SchedulerAction::Kind::kDone);

  ASSERT_EQ(s.finished().size(), 1u);
  EXPECT_DOUBLE_EQ(s.finished()[0].admit_s, 6.0);
  EXPECT_DOUBLE_EQ(s.finished()[0].queue_delay_s, 5.0);
}

TEST(ServeScheduler, TailRequestNotStuckBehindDistantArrival) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kStaticBatching;
  opt.batch_size = 4;
  opt.max_wait_s = 5.0;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 8, 4));
  s.submit(req(1, 100.0, 8, 4));
  s.close();

  // The old behavior: wait until t=100 for the queue to fill. Fixed: the
  // wait deadline is min(next_arrival, oldest.arrival + max_wait_s) = 5.
  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kWait);
  EXPECT_DOUBLE_EQ(a.wait_until, 5.0);

  a = s.next(5.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.request_ids, std::vector<int>{0});
  s.complete(a.decision, 6.0);

  // Request 1 has not arrived yet: wait for its arrival, then stale-dispatch.
  a = s.next(6.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kWait);
  EXPECT_DOUBLE_EQ(a.wait_until, 100.0);
  a = s.next(100.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kWait);
  EXPECT_DOUBLE_EQ(a.wait_until, 105.0);
  a = s.next(105.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.request_ids, std::vector<int>{1});
  s.complete(a.decision, 106.0);
  EXPECT_EQ(s.next(106.0).kind, SchedulerAction::Kind::kDone);
}

TEST(ServeScheduler, FullBatchDispatchesImmediatelyWithPaddedShape) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kStaticBatching;
  opt.batch_size = 3;
  opt.max_wait_s = 50.0;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 10, 4));
  s.submit(req(1, 0.0, 30, 2));
  s.submit(req(2, 0.0, 20, 9));
  const SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.request_ids, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(a.decision.padded_prompt, 30);  // batch max prompt
  EXPECT_EQ(a.decision.padded_gen, 9);      // batch max generation
  EXPECT_EQ(a.decision.phase, ServePhase::kPrefillPass);
}

TEST(ServeScheduler, StaticBatchSizeClampedByMaxBatch) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kStaticBatching;
  opt.batch_size = 16;
  opt.max_batch = 2;  // KV capacity wins over the batching knob
  opt.max_wait_s = 0.0;
  ServeScheduler s(opt);
  for (int i = 0; i < 5; ++i) s.submit(req(i, 0.0, 8, 2));
  s.close();
  std::vector<std::size_t> sizes;
  double t = 0.0;
  for (;;) {
    SchedulerAction a = s.next(t);
    if (a.kind == SchedulerAction::Kind::kDone) break;
    ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
    sizes.push_back(a.decision.request_ids.size());
    t += 1.0;
    s.complete(a.decision, t);
  }
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2, 1}));
}

TEST(ServeScheduler, IterationAdmissionClampedByCapacity) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.max_batch = 3;
  ServeScheduler s(opt);
  for (int i = 0; i < 5; ++i) s.submit(req(i, 0.0, 8, 2));
  s.close();

  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.request_ids, (std::vector<int>{0, 1, 2}));
  s.complete(a.decision, 1.0);
  EXPECT_EQ(s.active(), 3);

  // At capacity: the two queued requests must not be admitted; the next
  // decision is a decode round over the active set.
  a = s.next(1.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  ASSERT_EQ(a.decision.phase, ServePhase::kDecodePass);
  EXPECT_EQ(a.decision.request_ids, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(a.decision.max_context, 9);  // prompt 8 + first token
  s.complete(a.decision, 2.0);  // gen=2: everyone finishes this round

  a = s.next(2.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.phase, ServePhase::kPrefillPass);
  EXPECT_EQ(a.decision.request_ids, (std::vector<int>{3, 4}));
}

TEST(ServeScheduler, ZeroRemainingRequestCompletesAtAdmission) {
  // Prefill emits the first token, so gen_tokens == 1 never enters the
  // active set — it completes with the prefill pass.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 8, 1));
  s.close();
  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  s.complete(a.decision, 0.5);
  EXPECT_EQ(s.active(), 0);
  ASSERT_EQ(s.finished().size(), 1u);
  EXPECT_DOUBLE_EQ(s.finished()[0].finish_s, 0.5);
  EXPECT_EQ(s.next(0.5).kind, SchedulerAction::Kind::kDone);
}

TEST(ServeScheduler, QueueDelayExcludesPrefillTime) {
  // Regression for the conflation bug: queue delay is arrival -> admission,
  // not arrival -> end of prefill; prefill time is a separate stat.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 8, 1));
  s.close();
  SchedulerAction a = s.next(3.0);  // admitted at t=3
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  s.complete(a.decision, 8.0, /*prefill_end_s=*/5.0);
  ASSERT_EQ(s.finished().size(), 1u);
  const RequestStats& r = s.finished()[0];
  EXPECT_DOUBLE_EQ(r.queue_delay_s, 3.0);  // old code reported 5.0
  EXPECT_DOUBLE_EQ(r.prefill_s, 2.0);
  EXPECT_DOUBLE_EQ(r.finish_s, 8.0);
}

TEST(ServeScheduler, LiveStreamBlocksUntilSubmitOrClose) {
  ServeScheduler s(SchedulerOptions{});
  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kWait);
  EXPECT_TRUE(std::isinf(a.wait_until));
  s.close();
  EXPECT_EQ(s.next(0.0).kind, SchedulerAction::Kind::kDone);
}

TEST(ServeScheduler, RejectsReuseOfFinishedRequestId) {
  // Ids are single-use for the scheduler's lifetime: back-ends index
  // per-request buffers by id, so reusing a finished request's id would
  // silently alias its slot. The old queue-scan check only caught ids
  // still queued or open, not finished ones.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 8, 1));
  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  s.complete(a.decision, 0.5);  // gen=1: request 0 is now finished
  ASSERT_EQ(s.finished().size(), 1u);
  EXPECT_THROW(s.submit(req(0, 1.0, 8, 1)), InvalidArgumentError);
}

TEST(ServeScheduler, RejectsMisuse) {
  ServeScheduler s(SchedulerOptions{});
  s.submit(req(0, 0.0, 8, 2));
  EXPECT_THROW(s.submit(req(0, 0.0, 8, 2)), InvalidArgumentError);  // dup id
  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_THROW(s.next(0.0), InvalidArgumentError);  // dispatch in flight
  s.complete(a.decision, 1.0);
  EXPECT_THROW(s.complete(a.decision, 1.0), InvalidArgumentError);
  s.close();
  EXPECT_THROW(s.submit(req(1, 0.0, 8, 2)), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Runtime back-end: the serving loop over the real pipeline engine.
// ---------------------------------------------------------------------------

ModelSpec tiny_spec() {
  ModelSpec m;
  m.name = "tiny-serve";
  m.family = "opt";
  m.hidden = 32;
  m.ffn = 128;
  m.heads = 4;
  m.layers = 6;
  m.vocab = 96;
  m.max_pos = 64;
  return m;
}

std::vector<TokenId> make_prompt(Rng& rng, const ModelSpec& m, int len) {
  std::vector<TokenId> p;
  for (int t = 0; t < len; ++t)
    p.push_back(static_cast<TokenId>(rng.uniform_int(0, m.vocab - 1)));
  return p;
}

class OnlineEngineTest : public ::testing::Test {
 protected:
  OnlineEngineTest()
      : spec_(tiny_spec()),
        weights_(build_random_model(
            spec_, std::vector<int>(static_cast<std::size_t>(spec_.layers), 8),
            2024)),
        engine_(weights_, {{0, 3}, {3, 6}}, 2, 2) {}
  ModelSpec spec_;
  ModelWeights weights_;
  PipelineEngine engine_;
};

TEST_F(OnlineEngineTest, ReplayDecodeMatchesReferenceGreedy) {
  // With uniform prompt lengths nothing is padded, so both policies and
  // both execution modes must reproduce the single-threaded reference
  // generation token for token — session mode via step-level decode,
  // replay mode via its full-context re-runs.
  Rng rng(3);
  std::vector<std::vector<TokenId>> prompts;
  std::vector<OnlineTraceRequest> trace;
  for (int i = 0; i < 3; ++i) {
    OnlineTraceRequest t;
    t.prompt = make_prompt(rng, spec_, 8);
    t.gen_tokens = 5;
    prompts.push_back(t.prompt);
    trace.push_back(std::move(t));
  }
  const auto reference = reference_generate(weights_, prompts, 5);
  for (SchedulerPolicy policy : {SchedulerPolicy::kStaticBatching,
                                 SchedulerPolicy::kIterationLevel}) {
    for (DecodeExec exec : {DecodeExec::kSession, DecodeExec::kReplay}) {
      OnlineEngineOptions opt;
      opt.scheduler.policy = policy;
      opt.scheduler.exec = exec;
      opt.scheduler.batch_size = 3;
      opt.scheduler.max_batch = 3;
      const OnlineReport rep = serve_trace(engine_, trace, opt);
      EXPECT_EQ(rep.completed, 3);
      ASSERT_EQ(rep.generated.size(), 3u);
      for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(rep.generated[i], reference[i])
            << scheduler_policy_name(policy) << " request " << i;
    }
  }
}

TEST_F(OnlineEngineTest, TraceReportSeparatesQueueDelayFromPrefill) {
  std::vector<OnlineTraceRequest> trace;
  Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    OnlineTraceRequest t;
    t.prompt = make_prompt(rng, spec_, 10);
    t.gen_tokens = 3;
    trace.push_back(std::move(t));
  }
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  const OnlineReport rep = serve_trace(engine_, trace, opt);
  EXPECT_EQ(rep.completed, 4);
  // Burst admitted instantly: zero queue delay, but real prefill time.
  EXPECT_NEAR(rep.queue_delay.mean_s, 0.0, 1e-12);
  EXPECT_GT(rep.prefill.mean_s, 0.0);
  EXPECT_GT(rep.throughput_tokens_per_s, 0.0);
  for (const RequestStats& r : rep.requests)
    EXPECT_GE(r.finish_s, r.admit_s + r.prefill_s - 1e-9);
}

TEST_F(OnlineEngineTest, LiveSubmissionsServeToCompletion) {
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.max_batch = 4;
  OnlineEngine server(engine_, opt);
  Rng rng(11);
  std::vector<int> ids;
  for (int i = 0; i < 4; ++i)
    ids.push_back(server.submit(make_prompt(rng, spec_, 6 + i), 3));
  server.close();
  const OnlineReport rep = server.wait();
  EXPECT_EQ(rep.completed, 4);
  EXPECT_EQ(ids, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_EQ(rep.generated.size(), 4u);
  for (const auto& g : rep.generated) EXPECT_EQ(g.size(), 3u);
  for (const RequestStats& r : rep.requests) {
    EXPECT_GE(r.queue_delay_s, 0.0);
    EXPECT_GE(r.finish_s, r.arrival_s);
  }
}

// ---------------------------------------------------------------------------
// Sim-vs-runtime parity: both back-ends drive the SAME scheduler, so on an
// identical burst trace (decision composition is duration-independent) they
// must log identical admission order and batch composition.
// ---------------------------------------------------------------------------

void expect_same_decisions(const std::vector<DispatchDecision>& sim,
                           const std::vector<DispatchDecision>& rt,
                           const char* label) {
  ASSERT_EQ(sim.size(), rt.size()) << label;
  for (std::size_t i = 0; i < sim.size(); ++i) {
    SCOPED_TRACE(std::string(label) + " decision " + std::to_string(i));
    EXPECT_EQ(sim[i].seq, rt[i].seq);
    EXPECT_EQ(sim[i].phase, rt[i].phase);
    EXPECT_EQ(sim[i].request_ids, rt[i].request_ids);
    EXPECT_EQ(sim[i].contexts, rt[i].contexts);
    EXPECT_EQ(sim[i].padded_prompt, rt[i].padded_prompt);
    EXPECT_EQ(sim[i].padded_gen, rt[i].padded_gen);
    EXPECT_EQ(sim[i].max_context, rt[i].max_context);
    EXPECT_EQ(sim[i].num_join, rt[i].num_join);
    EXPECT_EQ(sim[i].preempted, rt[i].preempted);
    EXPECT_EQ(sim[i].tenants, rt[i].tenants);
    EXPECT_EQ(sim[i].classes, rt[i].classes);
    EXPECT_EQ(sim[i].forced_joins, rt[i].forced_joins);
  }
}

TEST_F(OnlineEngineTest, SimAndRuntimeMakeIdenticalDecisions) {
  // Simulator side: the paper cluster and a PipeEdge plan (any feasible
  // plan works — decisions depend on the trace and policy only).
  const auto pc = paper_cluster(3);
  const ModelSpec& sim_model = model_registry_get(pc.model_name);
  CostProvider cost(sim_model, pc.cluster, CostMode::kProfiled);
  const ExecutionPlan plan = pipeedge_plan(cost);

  // One burst trace, two views: lengths for the simulator, real token
  // sequences of the same lengths for the engine.
  const int prompt_lens[] = {6, 9, 12, 15, 18, 21};
  const int gens[] = {4, 5, 6, 7, 8, 9};
  Rng rng(17);
  std::vector<OnlineRequest> sim_reqs;
  std::vector<OnlineTraceRequest> rt_trace;
  for (int i = 0; i < 6; ++i) {
    OnlineRequest sr;
    sr.arrival_s = 0.0;
    sr.prompt_len = prompt_lens[i];
    sr.gen_tokens = gens[i];
    sim_reqs.push_back(sr);
    OnlineTraceRequest tr;
    tr.arrival_s = 0.0;
    tr.prompt = make_prompt(rng, spec_, prompt_lens[i]);
    tr.gen_tokens = gens[i];
    rt_trace.push_back(std::move(tr));
  }

  for (SchedulerPolicy policy : {SchedulerPolicy::kStaticBatching,
                                 SchedulerPolicy::kIterationLevel}) {
    OnlineEngineOptions opt;
    opt.scheduler.policy = policy;
    opt.scheduler.batch_size = 4;
    opt.scheduler.max_batch = 4;
    opt.scheduler.max_wait_s = 0.0;  // burst: dispatch as soon as queued
    const OnlineSimResult sim =
        simulate_online(sim_model, pc.cluster, plan, sim_reqs, opt.scheduler);
    ASSERT_TRUE(sim.ok) << sim.error;
    const OnlineReport rt = serve_trace(engine_, rt_trace, opt);
    EXPECT_EQ(sim.completed, rt.completed);
    expect_same_decisions(sim.decisions, rt.decisions,
                          scheduler_policy_name(policy));
  }
}

TEST_F(OnlineEngineTest, TenantAwareParityOnBurstTraces) {
  // The tenant-aware fair-share pass joins the parity contract: on an
  // identical burst trace with tenants configured, both back-ends must
  // produce the same admission order, tenant stamps and class stamps —
  // under both policies.
  const auto pc = paper_cluster(3);
  const ModelSpec& sim_model = model_registry_get(pc.model_name);
  CostProvider cost(sim_model, pc.cluster, CostMode::kProfiled);
  const ExecutionPlan plan = pipeedge_plan(cost);

  std::vector<TenantSpec> tenants(2);
  tenants[0].id = 1;
  tenants[0].weight = 2.0;
  tenants[1].id = 2;
  tenants[1].weight = 1.0;
  tenants[1].default_class = 1;

  const int prompt_lens[] = {6, 9, 12, 15, 18, 21};
  const int gens[] = {4, 5, 6, 7, 8, 9};
  const int tenant_of[] = {2, 2, 2, 1, 1, 1};  // heavy tenant arrives last
  Rng rng(23);
  std::vector<OnlineRequest> sim_reqs;
  std::vector<OnlineTraceRequest> rt_trace;
  for (int i = 0; i < 6; ++i) {
    OnlineRequest sr;
    sr.arrival_s = 0.0;
    sr.prompt_len = prompt_lens[i];
    sr.gen_tokens = gens[i];
    sr.tenant_id = tenant_of[i];
    sr.req_class = tenant_of[i] == 2 ? 1 : 0;
    sim_reqs.push_back(sr);
    OnlineTraceRequest tr;
    tr.arrival_s = 0.0;
    tr.prompt = make_prompt(rng, spec_, prompt_lens[i]);
    tr.gen_tokens = gens[i];
    tr.tenant_id = sr.tenant_id;
    tr.req_class = sr.req_class;
    rt_trace.push_back(std::move(tr));
  }

  for (SchedulerPolicy policy : {SchedulerPolicy::kStaticBatching,
                                 SchedulerPolicy::kIterationLevel}) {
    OnlineEngineOptions opt;
    opt.scheduler.policy = policy;
    opt.scheduler.batch_size = 4;
    opt.scheduler.max_batch = 4;
    opt.scheduler.max_wait_s = 0.0;
    opt.scheduler.tenants = tenants;
    const OnlineSimResult sim =
        simulate_online(sim_model, pc.cluster, plan, sim_reqs, opt.scheduler);
    ASSERT_TRUE(sim.ok) << sim.error;
    const OnlineReport rt = serve_trace(engine_, rt_trace, opt);
    EXPECT_EQ(sim.completed, rt.completed);
    expect_same_decisions(sim.decisions, rt.decisions,
                          scheduler_policy_name(policy));
    // The fair-share order is actually exercised: the heavy tenant's
    // first request outranks the light tenant's FIFO backlog.
    ASSERT_FALSE(rt.decisions.empty());
    ASSERT_FALSE(rt.decisions[0].tenants.empty());
    EXPECT_EQ(rt.decisions[0].tenants[0], 1);
    // Per-tenant summaries materialize on both back-ends.
    EXPECT_EQ(sim.tenants.size(), 2u);
    EXPECT_EQ(rt.tenants.size(), 2u);
  }
}

}  // namespace
}  // namespace llmpq
