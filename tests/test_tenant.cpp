#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "common/error.hpp"
#include "hw/trace.hpp"
#include "serve/scheduler.hpp"
#include "serve/tenant.hpp"
#include "sim/online_sim.hpp"

namespace llmpq {
namespace {

ServeRequest treq(int id, double arrival, int prompt, int gen, int tenant = 0,
                  int cls = 0) {
  ServeRequest r;
  r.id = id;
  r.arrival_s = arrival;
  r.prompt_len = prompt;
  r.gen_tokens = gen;
  r.tenant_id = tenant;
  r.req_class = cls;
  return r;
}

TenantSpec tenant(int id, double weight,
                  double slo = std::numeric_limits<double>::infinity()) {
  TenantSpec t;
  t.id = id;
  t.weight = weight;
  t.slo_s = slo;
  return t;
}

/// Drives the scheduler to completion with a fixed virtual timestep,
/// recording each dispatch decision with the clock value it was made at —
/// the regression tests below reconstruct wait intervals from this log.
struct TimedDecision {
  DispatchDecision d;
  double at = 0.0;
};

std::vector<TimedDecision> drive(ServeScheduler& s, double dt,
                                 int guard_limit = 500) {
  std::vector<TimedDecision> log;
  double t = 0.0;
  for (int guard = 0;; ++guard) {
    EXPECT_LT(guard, guard_limit) << "scheduler failed to converge";
    if (guard >= guard_limit) break;
    SchedulerAction a = s.next(t);
    if (a.kind == SchedulerAction::Kind::kDone) break;
    if (a.kind == SchedulerAction::Kind::kWait) {
      EXPECT_GT(a.wait_until, t) << "wait must advance the clock";
      t = a.wait_until;
      continue;
    }
    log.push_back({a.decision, t});
    t += dt;
    s.complete(a.decision, t);
  }
  return log;
}

// ---------------------------------------------------------------------------
// Weighted fair sharing: admission order under backlog.
// ---------------------------------------------------------------------------

TEST(TenantFairShare, WeightedAdmissionFavorsHeavierTenant) {
  // Tenant 1 (weight 2) submits AFTER tenant 2 (weight 1), yet under a
  // shared backlog the fair-share pass must give it two of the three batch
  // slots: picks follow ascending virtual service (tokens / weight), not
  // FIFO arrival order.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.max_batch = 3;
  opt.tenants = {tenant(1, 2.0), tenant(2, 1.0)};
  ServeScheduler s(opt);
  for (int i = 0; i < 3; ++i) s.submit(treq(i, 0.0, 8, 2, /*tenant=*/2));
  for (int i = 3; i < 6; ++i) s.submit(treq(i, 0.0, 8, 2, /*tenant=*/1));
  s.close();

  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  // Both accounts start at zero; the tie goes to the first spec (tenant
  // 1), whose 10-token pick costs only 5 virtual units at weight 2 — so it
  // wins again on the third slot.
  EXPECT_EQ(a.decision.request_ids, (std::vector<int>{3, 0, 4}));
  EXPECT_EQ(a.decision.tenants, (std::vector<int>{1, 2, 1}));
  EXPECT_EQ(a.decision.classes, (std::vector<int>{0, 0, 0}));
}

TEST(TenantFairShare, LegacyModeKeepsFifoOrderAndStampsZeroTenants) {
  // No tenants configured: the decision log must be the historical FIFO
  // order (committed parity baselines depend on it), with the new tenant/
  // class columns stamped as zeros.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.max_batch = 3;
  ServeScheduler s(opt);
  for (int i = 0; i < 3; ++i) s.submit(treq(i, 0.0, 8, 2, /*tenant=*/2));
  for (int i = 3; i < 6; ++i) s.submit(treq(i, 0.0, 8, 2, /*tenant=*/1));
  s.close();

  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.request_ids, (std::vector<int>{0, 1, 2}));
  // Without specs the tenant field is carried to stats but the decision
  // stamps reflect the submitted ids verbatim.
  EXPECT_EQ(a.decision.tenants, (std::vector<int>{2, 2, 2}));
}

TEST(TenantFairShare, IdleTenantCannotBankFairShareCredit) {
  // Tenant 2 sits idle while tenant 1 burns 24 virtual units of service.
  // When tenant 2's first request arrives its account must be lifted to
  // the smallest account among tenants still holding rows — so the next
  // free slot goes to tenant 1's queued backlog (tie, first spec wins),
  // not to a returning tenant wielding an artificial deficit.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.max_batch = 2;
  opt.tenants = {tenant(1, 1.0), tenant(2, 1.0)};
  ServeScheduler s(opt);
  s.submit(treq(0, 0.0, 8, 6, 1));
  s.submit(treq(1, 0.0, 8, 2, 1));
  s.submit(treq(2, 0.0, 8, 4, 1));
  s.submit(treq(3, 0.0, 8, 4, 1));
  s.submit(treq(10, 1.0, 8, 4, 2));
  s.submit(treq(11, 1.0, 8, 4, 2));
  s.close();

  SchedulerAction a = s.next(0.0);  // prefill {0, 1}: tenant 1 charged 24
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  ASSERT_EQ(a.decision.request_ids, (std::vector<int>{0, 1}));
  s.complete(a.decision, 0.5);

  a = s.next(0.5);  // decode round; request 1 (gen 2) retires after it
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  ASSERT_EQ(a.decision.phase, ServePhase::kDecodePass);
  s.complete(a.decision, 1.0);

  // One slot free, request 0 still active (tenant 1 holds rows at account
  // 24). Tenant 2's account is clamped up from 0 to 24, so the tie-break
  // admits tenant 1's queued request 2 — not tenant 2's request 10.
  a = s.next(1.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  ASSERT_EQ(a.decision.phase, ServePhase::kPrefillPass);
  EXPECT_EQ(a.decision.request_ids, (std::vector<int>{2}));
  EXPECT_EQ(a.decision.tenants, (std::vector<int>{1}));
}

// ---------------------------------------------------------------------------
// Resume-wait accounting: preemption-era waiting must land in
// RequestStats::resume_wait_s so waits decompose wall time (the accounting
// gap this PR fixes — queue_delay_s only covers arrival -> first
// admission).
// ---------------------------------------------------------------------------

TEST(TenantAccounting, ResumeWaitCreditsExactParkedInterval) {
  // Same memory-pressure scenario as the continuous-scheduler suite:
  // page_size 4, 6 pages — request 1 is preempted when the ledger
  // overflows and resumes after the survivor retires. Its parked
  // interval, reconstructed from the timed decision log, must equal
  // resume_wait_s to the bit.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.exec = DecodeExec::kContinuous;
  opt.kv_page_size = 4;
  opt.kv_pages = 6;
  ServeScheduler s(opt);
  s.submit(treq(0, 0.0, 10, 8));
  s.submit(treq(1, 0.0, 9, 8));
  s.close();

  const std::vector<TimedDecision> log = drive(s, 0.25);

  // Reconstruct request 1's parked intervals: preemption decision time ->
  // the decision that re-admits it as a joining row.
  double expected_wait = 0.0;
  double parked_at = -1.0;
  for (const TimedDecision& td : log) {
    for (int id : td.d.preempted) {
      if (id == 1) {
        EXPECT_LT(parked_at, 0.0) << "double preemption without resume";
        parked_at = td.at;
      }
    }
    const std::size_t joins = static_cast<std::size_t>(td.d.num_join);
    for (std::size_t i = td.d.request_ids.size() - joins;
         i < td.d.request_ids.size(); ++i) {
      if (td.d.request_ids[i] == 1 && parked_at >= 0.0) {
        expected_wait += td.at - parked_at;
        parked_at = -1.0;
      }
    }
  }
  ASSERT_GT(expected_wait, 0.0) << "scenario must preempt request 1";

  const RequestStats* r1 = nullptr;
  for (const RequestStats& r : s.finished())
    if (r.id == 1) r1 = &r;
  ASSERT_NE(r1, nullptr);
  EXPECT_DOUBLE_EQ(r1->resume_wait_s, expected_wait);
  // Waits decompose wall time: queueing + parked time fits inside
  // arrival -> finish with real service time left over.
  EXPECT_LT(r1->queue_delay_s + r1->resume_wait_s,
            r1->finish_s - r1->arrival_s);
  // The survivor never parked.
  for (const RequestStats& r : s.finished())
    if (r.id == 0) EXPECT_DOUBLE_EQ(r.resume_wait_s, 0.0);
}

// ---------------------------------------------------------------------------
// Starvation bound: a waiting join passed over by a full batch must be
// force-admitted after a bounded number of rounds (the next_continuous
// join-starvation fix), at a deterministic decision seq.
// ---------------------------------------------------------------------------

TEST(TenantAccounting, StarvationBoundForceAdmitsAfterExactRounds) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.exec = DecodeExec::kContinuous;
  opt.max_batch = 1;  // request 1 can never join while 0 runs
  opt.join_starvation_rounds = 3;
  ServeScheduler s(opt);
  s.submit(treq(0, 0.0, 4, 20));
  s.submit(treq(1, 0.0, 4, 2));
  s.close();

  const std::vector<TimedDecision> log = drive(s, 0.25);

  // seq 0: prefill of request 0. seqs 1..2: decode rounds that pass the
  // waiting head over (rounds 1 and 2 of the counter). seq 3: the third
  // pass-over trips the bound — request 0 is preempted and request 1
  // force-admitted.
  ASSERT_GE(log.size(), 4u);
  const DispatchDecision& forced = log[3].d;
  EXPECT_EQ(forced.forced_joins, 1);
  EXPECT_EQ(forced.preempted, std::vector<int>{0});
  EXPECT_EQ(forced.request_ids, std::vector<int>{1});
  EXPECT_EQ(forced.num_join, 1);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(log[i].d.forced_joins, 0) << "seq " << i;
  EXPECT_GE(s.forced_joins(), 1);

  // Bounded worst-case admission delay: request 1 was admitted at the
  // forced decision's clock value, i.e. after exactly prefill + 2 decode
  // rounds of waiting — not after request 0's full 20-token generation.
  const RequestStats* r1 = nullptr;
  for (const RequestStats& r : s.finished())
    if (r.id == 1) r1 = &r;
  ASSERT_NE(r1, nullptr);
  EXPECT_DOUBLE_EQ(r1->admit_s, log[3].at);
  EXPECT_DOUBLE_EQ(r1->queue_delay_s, log[3].at);

  // Everyone still finishes exactly once (request 0 resumes afterwards).
  EXPECT_EQ(s.outcomes().completed, 2);
}

TEST(TenantAccounting, StarvationBoundDefaultsOffWithoutTenants) {
  // join_starvation_rounds = -1 (auto) must resolve to "off" in legacy
  // single-tenant mode so historical continuous decision logs stay
  // bit-identical: the waiting request is passed over indefinitely while
  // the running batch is full.
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.exec = DecodeExec::kContinuous;
  opt.max_batch = 1;
  ServeScheduler s(opt);
  s.submit(treq(0, 0.0, 4, 20));
  s.submit(treq(1, 0.0, 4, 2));
  s.close();
  const std::vector<TimedDecision> log = drive(s, 0.25);
  for (const TimedDecision& td : log) EXPECT_EQ(td.d.forced_joins, 0);
  EXPECT_EQ(s.forced_joins(), 0);
  EXPECT_EQ(s.outcomes().completed, 2);
}

// ---------------------------------------------------------------------------
// Per-tenant enforcement: deadlines and admission bounds scoped to a
// tenant, layered on the scheduler's global knobs.
// ---------------------------------------------------------------------------

TEST(TenantEnforcement, PerTenantDeadlineAndAdmissionBound) {
  TenantSpec strict = tenant(1, 1.0, /*slo=*/1.0);
  strict.deadline_s = 2.0;  // enforced, not just measured
  TenantSpec bounded = tenant(2, 1.0);
  bounded.admission_capacity = 1;

  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.max_batch = 1;
  // Tenant 2 first: the zero-account tie-break picks the first spec, so
  // the long request 0 deterministically occupies the only slot.
  opt.tenants = {bounded, strict};
  ServeScheduler s(opt);
  s.submit(treq(0, 0.0, 8, 40, /*tenant=*/2));  // occupies the only slot
  s.submit(treq(1, 0.0, 8, 2, /*tenant=*/1));   // expires waiting at 2.0
  s.submit(treq(2, 0.5, 8, 2, /*tenant=*/2));   // 1 waiting: admitted
  s.submit(treq(3, 0.5, 8, 2, /*tenant=*/2));   // 2 waiting: bounced
  s.close();

  drive(s, 0.25);

  std::map<int, RequestOutcome> by_id;
  for (const RequestStats& r : s.finished()) by_id[r.id] = r.outcome;
  ASSERT_EQ(by_id.size(), 4u);
  EXPECT_EQ(by_id[0], RequestOutcome::kCompleted);
  EXPECT_EQ(by_id[1], RequestOutcome::kTimedOut);
  EXPECT_EQ(by_id[2], RequestOutcome::kCompleted);
  EXPECT_EQ(by_id[3], RequestOutcome::kRejected);

  // The per-tenant summaries conserve the tallies and expose the fairness
  // floor CI gates on.
  const std::vector<TenantSummary> sums = s.tenant_summaries();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_EQ(sums[0].tenant, 1);
  EXPECT_EQ(sums[0].submitted, 1);
  EXPECT_EQ(sums[0].timed_out, 1);
  EXPECT_DOUBLE_EQ(sums[0].slo_attainment, 0.0);
  EXPECT_EQ(sums[1].tenant, 2);
  EXPECT_EQ(sums[1].submitted, 3);
  EXPECT_EQ(sums[1].completed, 2);
  EXPECT_EQ(sums[1].rejected, 1);
  EXPECT_DOUBLE_EQ(min_slo_attainment(sums), 0.0);
}

TEST(TenantEnforcement, UnknownTenantIdRejectedAtSubmit) {
  SchedulerOptions opt;
  opt.tenants = {tenant(1, 1.0)};
  ServeScheduler s(opt);
  EXPECT_THROW(s.submit(treq(0, 0.0, 8, 2, /*tenant=*/9)),
               InvalidArgumentError);
}

TEST(TenantEnforcement, NonPositiveWeightRejected) {
  SchedulerOptions opt;
  opt.tenants = {tenant(1, 0.0)};
  EXPECT_THROW(ServeScheduler s(opt), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// summarize_tenants / min_slo_attainment units.
// ---------------------------------------------------------------------------

RequestStats stat(int id, int tenant, RequestOutcome outcome, double latency,
                  int gen = 4) {
  RequestStats r;
  r.id = id;
  r.tenant = tenant;
  r.outcome = outcome;
  r.arrival_s = 0.0;
  r.finish_s = latency;
  r.gen_tokens = gen;
  return r;
}

TEST(TenantSummaries, AggregatesPerTenantAndFoldsUnknowns) {
  std::vector<TenantSpec> specs = {tenant(1, 2.0, /*slo=*/1.0),
                                   tenant(2, 1.0)};
  std::vector<RequestStats> finished = {
      stat(0, 1, RequestOutcome::kCompleted, 0.5),   // within SLO
      stat(1, 1, RequestOutcome::kCompleted, 2.0),   // SLO miss
      stat(2, 1, RequestOutcome::kTimedOut, 3.0),    // lost = miss
      stat(3, 2, RequestOutcome::kCompleted, 9.0),   // no SLO: counts
      stat(4, 7, RequestOutcome::kFailed, 1.0),      // unknown tenant
  };
  const auto sums = summarize_tenants(finished, specs);
  ASSERT_EQ(sums.size(), 3u);

  EXPECT_EQ(sums[0].tenant, 1);
  EXPECT_EQ(sums[0].submitted, 3);
  EXPECT_EQ(sums[0].completed, 2);
  EXPECT_EQ(sums[0].timed_out, 1);
  EXPECT_EQ(sums[0].tokens_out, 8);  // completed only: 2 requests * gen 4
  EXPECT_NEAR(sums[0].slo_attainment, 1.0 / 3.0, 1e-12);

  EXPECT_EQ(sums[1].tenant, 2);
  EXPECT_DOUBLE_EQ(sums[1].slo_attainment, 1.0);  // no SLO, nothing lost

  // Unknown tenant folded into a synthetic row so requests conserve.
  EXPECT_EQ(sums[2].tenant, 7);
  EXPECT_EQ(sums[2].submitted, 1);
  EXPECT_EQ(sums[2].failed, 1);
  EXPECT_DOUBLE_EQ(sums[2].slo_attainment, 0.0);

  EXPECT_NEAR(min_slo_attainment(sums), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(min_slo_attainment({}), 1.0);
}

// ---------------------------------------------------------------------------
// Trace-driven tenant workload generator (the 10^6-request scenario
// source): deterministic, share-weighted, class-stamped.
// ---------------------------------------------------------------------------

TEST(TenantWorkload, DeterministicShareWeightedAndClassStamped) {
  Rng trng(3);
  const ClusterTrace trace = generate_cluster_trace(trng, 10);
  std::vector<TenantSpec> tenants = {tenant(1, 2.0), tenant(2, 1.0)};
  tenants[1].default_class = 2;

  Rng a(5), b(5);
  const auto w1 =
      generate_tenant_workload(a, trace, tenants, 2000, 5.0, {0.75, 0.25});
  const auto w2 =
      generate_tenant_workload(b, trace, tenants, 2000, 5.0, {0.75, 0.25});
  ASSERT_EQ(w1.size(), 2000u);
  ASSERT_EQ(w2.size(), 2000u);

  int n1 = 0, n2 = 0;
  for (std::size_t i = 0; i < w1.size(); ++i) {
    // Bit-identical across same-seed generations: scale baselines depend
    // on reproducible streams.
    EXPECT_DOUBLE_EQ(w1[i].arrival_s, w2[i].arrival_s);
    EXPECT_EQ(w1[i].prompt_len, w2[i].prompt_len);
    EXPECT_EQ(w1[i].gen_tokens, w2[i].gen_tokens);
    EXPECT_EQ(w1[i].tenant_id, w2[i].tenant_id);
    if (i > 0) EXPECT_GE(w1[i].arrival_s, w1[i - 1].arrival_s);
    // Every request belongs to a spec'd tenant and carries its class.
    if (w1[i].tenant_id == 1) {
      ++n1;
      EXPECT_EQ(w1[i].req_class, 0);
    } else {
      ASSERT_EQ(w1[i].tenant_id, 2);
      ++n2;
      EXPECT_EQ(w1[i].req_class, 2);
    }
  }
  // 75/25 load split, loosely: the heavy tenant dominates but both appear.
  EXPECT_GT(n1, n2 * 2);
  EXPECT_GT(n2, 100);
}

// ---------------------------------------------------------------------------
// Per-tenant conservation under chaos: preemption, retries, deadlines and
// admission bounds must never lose or duplicate a tenant's request. Widened
// nightly via LLMPQ_CHAOS_SEEDS like the other chaos sweeps.
// ---------------------------------------------------------------------------

void dump_tenant_chaos_artifact(const std::string& test, std::uint64_t seed,
                                const FaultPlan& plan,
                                const OnlineSimResult& res) {
  const char* dir = std::getenv("LLMPQ_CHAOS_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::ostringstream path;
  path << dir << "/" << test << "_seed" << seed << ".json";
  std::ofstream out(path.str());
  out << "{\n  \"test\": \"" << test << "\",\n  \"seed\": " << seed
      << ",\n  \"fault_plan\": " << plan.to_json()
      << ",\n  \"outcomes\": {\"completed\": " << res.completed
      << ", \"timed_out\": " << res.timed_out
      << ", \"rejected\": " << res.rejected << ", \"failed\": " << res.failed
      << ", \"retries\": " << res.retries
      << ", \"preemptions\": " << res.preemptions << "}\n}\n";
}

TEST(TenantChaos, SweepConservesEveryTenantRequest) {
  const auto pc = paper_cluster(3);
  const ModelSpec& model = model_registry_get(pc.model_name);
  CostProvider cost(model, pc.cluster, CostMode::kProfiled);
  const ExecutionPlan plan = pipeedge_plan(cost);

  TenantSpec strict = tenant(1, 2.0, /*slo=*/5.0);
  strict.deadline_s = 60.0;
  TenantSpec bounded = tenant(2, 1.0, /*slo=*/20.0);
  bounded.admission_capacity = 6;
  bounded.default_class = 1;
  const std::vector<TenantSpec> tenants = {strict, bounded};

  std::vector<std::uint64_t> seeds = {3, 11, 19};
  if (const char* env = std::getenv("LLMPQ_CHAOS_SEEDS")) {
    // Nightly CI widens the sweep: LLMPQ_CHAOS_SEEDS=N runs seeds 1..N.
    seeds.clear();
    const long n = std::strtol(env, nullptr, 10);
    for (long i = 1; i <= n; ++i)
      seeds.push_back(static_cast<std::uint64_t>(i));
  }

  Rng trng(7);
  const ClusterTrace trace = generate_cluster_trace(trng, 10);

  for (std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();

    Rng rng(100 + seed);
    const auto reqs = generate_tenant_workload(rng, trace, tenants, 60, 4.0,
                                               {0.6, 0.4}, 128, 32);

    FaultPlan faults;
    faults.seed = seed;
    FaultRule r;
    r.site = "sim.dispatch";
    r.kind = FaultKind::kThrow;
    r.probability = 0.2;
    r.max_fires = 4;
    faults.rules.push_back(r);

    OnlineSimOptions opt;
    opt.policy = SchedulerPolicy::kIterationLevel;
    opt.exec = DecodeExec::kContinuous;
    opt.max_batch = 4;
    opt.kv_page_size = 16;
    opt.kv_pages = 24;  // tight enough to preempt under the burst
    opt.max_retries = 3;
    opt.retry_backoff_s = 0.01;
    opt.tenants = tenants;

    const OnlineSimResult res =
        simulate_online(model, pc.cluster, plan, reqs, opt, faults);
    ASSERT_TRUE(res.ok) << res.error;

    const int n = static_cast<int>(reqs.size());
    ASSERT_EQ(static_cast<int>(res.requests.size()), n);

    // Global conservation: every id exactly once, outcomes partition n.
    std::map<int, int> seen;
    for (const RequestStats& rs : res.requests) {
      EXPECT_EQ(++seen[rs.id], 1) << "id finished twice: " << rs.id;
      // The stamped tenant must match the submitted one.
      EXPECT_EQ(rs.tenant,
                reqs[static_cast<std::size_t>(rs.id)].tenant_id);
    }
    EXPECT_EQ(res.completed + res.timed_out + res.rejected + res.failed, n);

    // Per-tenant conservation: each tenant's summary tallies exactly its
    // submitted requests, and the summed summaries reproduce the totals.
    std::map<int, int> expected;
    for (const auto& q : reqs) ++expected[q.tenant_id];
    int sum_submitted = 0, sum_completed = 0, sum_lost = 0;
    for (const TenantSummary& ts : res.tenants) {
      EXPECT_EQ(ts.submitted, expected[ts.tenant]) << "tenant " << ts.tenant;
      EXPECT_EQ(ts.completed + ts.timed_out + ts.rejected + ts.failed,
                ts.submitted)
          << "tenant " << ts.tenant;
      sum_submitted += ts.submitted;
      sum_completed += ts.completed;
      sum_lost += ts.timed_out + ts.rejected + ts.failed;
    }
    EXPECT_EQ(sum_submitted, n);
    EXPECT_EQ(sum_completed, res.completed);
    EXPECT_EQ(sum_lost, res.timed_out + res.rejected + res.failed);

    if (!failed_before && ::testing::Test::HasFailure())
      dump_tenant_chaos_artifact("SweepConservesEveryTenantRequest", seed,
                                 faults, res);
  }
}

}  // namespace
}  // namespace llmpq
