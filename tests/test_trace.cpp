// Tests for the observability layer: the JSON writer/reader pair, the
// span/counter tracer (concurrency, ring wrap, disabled-path cost, Chrome
// trace export) and the JSON schemas the CI perf gate consumes
// ("llmpq-bench/v1" via the bench harness, "llmpq-metrics/v1" via
// MetricsRegistry).
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/json_writer.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "harness.hpp"

// ---- Global allocation counter for the zero-allocation regression test.
// Replacing the global operator new in the test binary counts every heap
// allocation made anywhere in the process; the disabled-tracer test pins
// the TRACE_* fast path at exactly zero of them. Every replaceable form
// (throwing / nothrow / aligned, scalar / array) must be overridden
// together: a partial set lets some allocations reach the default (or
// sanitizer) operator new while their deallocation hits our free(),
// which ASan rightly reports as an alloc-dealloc mismatch.
namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  return posix_memalign(&p, align, size ? size : 1) == 0 ? p : nullptr;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace llmpq;

// A scope guard so a failing ASSERT cannot leak an armed session into the
// next test.
struct SessionGuard {
  explicit SessionGuard(std::size_t capacity = 1 << 12) {
    TraceSession::instance().start(capacity);
  }
  ~SessionGuard() { TraceSession::instance().stop(); }
};

// ---- JsonWriter / parse_json round trips.

TEST(JsonWriter, WritesAndParsesNestedDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "he said \"hi\"\n\ttab");
  w.kv("pi", 3.25);
  w.kv("count", std::int64_t{-7});
  w.kv("big", std::uint64_t{1} << 53);
  w.kv("flag", true);
  w.key("missing");
  w.null();
  w.key("items");
  w.begin_array();
  w.value(1);
  w.value("two");
  w.begin_object();
  w.kv("deep", false);
  w.end_object();
  w.end_array();
  w.end_object();
  ASSERT_TRUE(w.done());

  const JsonValue doc = parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("name").string, "he said \"hi\"\n\ttab");
  EXPECT_DOUBLE_EQ(doc.at("pi").number, 3.25);
  EXPECT_DOUBLE_EQ(doc.at("count").number, -7.0);
  EXPECT_DOUBLE_EQ(doc.at("big").number,
                   static_cast<double>(std::uint64_t{1} << 53));
  EXPECT_TRUE(doc.at("flag").boolean);
  EXPECT_TRUE(doc.at("missing").is_null());
  ASSERT_EQ(doc.at("items").array.size(), 3u);
  EXPECT_EQ(doc.at("items").array[1].string, "two");
  EXPECT_FALSE(doc.at("items").array[2].at("deep").boolean);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  const JsonValue doc = parse_json(os.str());
  ASSERT_EQ(doc.array.size(), 2u);
  EXPECT_TRUE(doc.array[0].is_null());
  EXPECT_TRUE(doc.array[1].is_null());
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  EXPECT_THROW(w.value(1), Error);       // value where a key is required
  EXPECT_THROW(w.end_array(), Error);    // mismatched container
  w.kv("k", 1);
  w.end_object();
  EXPECT_THROW(w.value(2), Error);       // second top-level value
}

TEST(ParseJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("[1,]"), Error);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
  const JsonValue v = parse_json(" {\"u\": \"\\u0041\\u00e9\"} ");
  EXPECT_EQ(v.at("u").string, "A\xc3\xa9");
}

// ---- Tracer.

TEST(Trace, ConcurrentSpansExportValidChronologicalTrace) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  SessionGuard session;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      TraceSession::set_thread_name("worker " + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        TRACE_SPAN1("test", "unit-of-work", "i", i);
        TRACE_COUNTER("test", "progress", i);
      }
    });
  }
  for (auto& th : threads) th.join();
  TraceSession::instance().stop();
  EXPECT_EQ(TraceSession::instance().dropped(), 0u);

  // Snapshot: every event present, globally sorted by timestamp.
  const std::vector<TraceEvent> events = TraceSession::instance().snapshot();
  int spans = 0, counters = 0;
  std::uint64_t prev_ts = 0;
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.ts_ns, prev_ts);
    prev_ts = e.ts_ns;
    if (e.phase == 'X') ++spans;
    if (e.phase == 'C') ++counters;
  }
  EXPECT_EQ(spans, kThreads * kSpansPerThread);
  EXPECT_EQ(counters, kThreads * kSpansPerThread);

  // Export: parses back as Chrome trace JSON with named runtime threads.
  std::ostringstream os;
  TraceSession::instance().write_chrome_trace(os);
  const JsonValue doc = parse_json(os.str());
  ASSERT_TRUE(doc.has("traceEvents"));
  int named_threads = 0, exported_spans = 0;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    const std::string& ph = e.at("ph").string;
    if (ph == "M" && e.at("name").string == "thread_name" &&
        e.at("args").at("name").string.rfind("worker ", 0) == 0)
      ++named_threads;
    if (ph == "X") {
      ++exported_spans;
      EXPECT_EQ(e.at("name").string, "unit-of-work");
      EXPECT_EQ(e.at("cat").string, "test");
      EXPECT_GE(e.at("dur").number, 0.0);
      EXPECT_DOUBLE_EQ(e.at("pid").number, trace_pids::kRuntime);
    }
  }
  EXPECT_EQ(named_threads, kThreads);
  EXPECT_EQ(exported_spans, kThreads * kSpansPerThread);
}

TEST(Trace, DisabledTracerRecordsNothingAndAllocatesNothing) {
  ASSERT_FALSE(TraceSession::enabled());
  // Warm up any lazy statics (session instance, TLS) outside the window.
  { TRACE_SPAN("test", "warmup"); }
  TRACE_COUNTER("test", "warmup", 1);
  TRACE_INSTANT("test", "warmup");

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10000; ++i) {
    TRACE_SPAN1("test", "off", "i", i);
    TRACE_COUNTER("test", "off", i);
    TRACE_INSTANT("test", "off");
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "disabled TRACE_* macros must not allocate";

  SessionGuard session;
  TraceSession::instance().stop();
  EXPECT_TRUE(TraceSession::instance().snapshot().empty())
      << "disabled-path events leaked into the next session";
}

TEST(Trace, FullRingDropsOldestAndCountsDrops) {
  constexpr std::size_t kCapacity = 16;
  constexpr int kEvents = 100;
  SessionGuard session(kCapacity);
  for (int i = 0; i < kEvents; ++i) TRACE_SPAN1("test", "wrap", "i", i);
  TraceSession::instance().stop();

  const std::vector<TraceEvent> events = TraceSession::instance().snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  EXPECT_EQ(TraceSession::instance().dropped(), kEvents - kCapacity);
  // The survivors are the newest events.
  for (const TraceEvent& e : events)
    EXPECT_GE(e.arg_value, static_cast<double>(kEvents - kCapacity));
}

TEST(Trace, ExplicitTimestampEventsCarryVirtualClocks) {
  SessionGuard session;
  TraceSession::instance().set_track_name(trace_pids::kSim, 2, "sim stage 2");
  TraceSession::emit_complete("sim", "decode", /*ts_s=*/1.5, /*dur_s=*/0.25,
                              trace_pids::kSim, 2, "round", 7);
  TraceSession::emit_async('b', "request", "queue", 0.5, /*id=*/42,
                           trace_pids::kServe);
  TraceSession::emit_async('e', "request", "queue", 2.0, /*id=*/42,
                           trace_pids::kServe);
  TraceSession::instance().stop();

  const std::vector<TraceEvent> events = TraceSession::instance().snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, 'b');
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_EQ(events[1].ts_ns, 1'500'000'000u);
  EXPECT_EQ(events[1].dur_ns, 250'000'000u);
  EXPECT_EQ(events[1].pid, trace_pids::kSim);
  EXPECT_EQ(events[2].phase, 'e');

  std::ostringstream os;
  TraceSession::instance().write_chrome_trace(os);
  const JsonValue doc = parse_json(os.str());
  bool saw_track_name = false, saw_begin = false, saw_end = false;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    const std::string& ph = e.at("ph").string;
    if (ph == "M" && e.at("name").string == "thread_name" &&
        e.at("args").at("name").string == "sim stage 2")
      saw_track_name = true;
    if (ph == "b" || ph == "e") {
      (ph == "b" ? saw_begin : saw_end) = true;
      EXPECT_EQ(e.at("id").string, "0x2a");  // async ids export as hex
      EXPECT_DOUBLE_EQ(e.at("pid").number, trace_pids::kServe);
    }
    if (ph == "X") {
      EXPECT_DOUBLE_EQ(e.at("ts").number, 1.5e6);  // microseconds
    }
  }
  EXPECT_TRUE(saw_track_name);
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
}

TEST(Trace, RestartClearsPreviousSession) {
  {
    SessionGuard session;
    TRACE_SPAN("test", "first-session");
  }
  SessionGuard session;
  { TRACE_SPAN1("test", "second-session", "x", 1); }
  TraceSession::instance().stop();
  const std::vector<TraceEvent> events = TraceSession::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second-session");
}

// ---- Export schemas consumed by CI.

TEST(BenchJson, ReportRoundTripsThroughSchemaV1) {
  using bench::ClusterReport;
  using bench::SchemeRow;
  ClusterReport report;
  report.cluster_index = 4;
  report.model_name = "opt-30b";
  report.devices = "3xT4-16G + 1xV100-32G";
  SchemeRow ok_row;
  ok_row.scheme = "LLM-PQ";
  ok_row.ok = true;
  ok_row.ppl = 10.5;
  ok_row.latency_s = 12.25;
  ok_row.throughput = 261.2;
  report.rows.push_back(ok_row);
  SchemeRow oom_row;
  oom_row.scheme = "Uniform";
  oom_row.note = "OOM";
  report.rows.push_back(oom_row);

  const std::string path =
      testing::TempDir() + "/llmpq_bench_roundtrip.json";
  ASSERT_TRUE(bench::write_reports_json(path, "unit-test", {report}));

  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  const JsonValue doc = parse_json(buf.str());
  EXPECT_EQ(doc.at("schema").string, "llmpq-bench/v1");
  EXPECT_EQ(doc.at("bench").string, "unit-test");
  ASSERT_EQ(doc.at("clusters").array.size(), 1u);
  const JsonValue& cluster = doc.at("clusters").array[0];
  EXPECT_DOUBLE_EQ(cluster.at("cluster").number, 4.0);
  EXPECT_EQ(cluster.at("model").string, "opt-30b");
  ASSERT_EQ(cluster.at("rows").array.size(), 2u);
  const JsonValue& row = cluster.at("rows").array[0];
  EXPECT_EQ(row.at("scheme").string, "LLM-PQ");
  EXPECT_TRUE(row.at("ok").boolean);
  EXPECT_DOUBLE_EQ(row.at("ppl").number, 10.5);
  EXPECT_DOUBLE_EQ(row.at("latency_s").number, 12.25);
  EXPECT_DOUBLE_EQ(row.at("throughput_tok_s").number, 261.2);
  EXPECT_FALSE(cluster.at("rows").array[1].at("ok").boolean);
  EXPECT_EQ(cluster.at("rows").array[1].at("note").string, "OOM");
}

TEST(MetricsJson, RegistryExportsSchemaV1) {
  MetricsRegistry registry;
  registry.set_value("engine.generated_tok_per_s", 123.5);

  LatencySummary lat;
  lat.count = 3;
  lat.mean_s = 0.5;
  lat.p50_s = 0.4;
  lat.p95_s = 0.9;
  lat.p99_s = 0.97;
  lat.max_s = 1.0;
  registry.set_latency("request", lat);

  EngineStats stats;
  stats.generate_calls = 2;
  stats.prefill.tokens = 128;
  stats.prefill.seconds = 0.25;
  StageStats stage;
  stage.busy_s = 0.75;
  stage.microbatches = 8;
  stats.stages.push_back(stage);
  registry.set_engine("pipeline", stats);

  std::ostringstream os;
  JsonWriter w(os);
  registry.write_json(w);
  const JsonValue doc = parse_json(os.str());
  EXPECT_EQ(doc.at("schema").string, "llmpq-metrics/v1");
  EXPECT_DOUBLE_EQ(
      doc.at("values").at("engine.generated_tok_per_s").number, 123.5);
  EXPECT_DOUBLE_EQ(doc.at("latencies").at("request").at("p95_s").number, 0.9);
  EXPECT_DOUBLE_EQ(doc.at("latencies").at("request").at("p99_s").number,
                   0.97);
  const JsonValue& engine = doc.at("engines").at("pipeline");
  EXPECT_DOUBLE_EQ(engine.at("generate_calls").number, 2.0);
  EXPECT_DOUBLE_EQ(engine.at("prefill").at("tokens").number, 128.0);
  ASSERT_EQ(engine.at("stages").array.size(), 1u);
  EXPECT_DOUBLE_EQ(engine.at("stages").array[0].at("busy_s").number, 0.75);
}

}  // namespace
