#include <gtest/gtest.h>

#include <cstdlib>

#include "common/thread_pool.hpp"
#include "core/assigner.hpp"

namespace llmpq {
namespace {

// Force a multi-worker shared pool even on single-core CI machines so the
// parallel search path actually fans out. overwrite=0 keeps an explicit
// LLMPQ_THREADS (e.g. the sanitizer sweep's); this runs before the lazily
// constructed ThreadPool::shared() reads the variable.
const bool kPoolEnvReady = [] {
  setenv("LLMPQ_THREADS", "4", /*overwrite=*/0);
  return true;
}();

AssignerResult run_assign(int cluster_index, const AssignerOptions& base,
                          int num_threads) {
  const PaperCluster pc = paper_cluster(cluster_index);
  const ModelSpec& model = model_registry_get(pc.model_name);
  CostProvider cost(model, pc.cluster, CostMode::kFitted);
  AssignerOptions opt = base;
  opt.num_threads = num_threads;
  return assign(cost, opt);
}

void expect_identical(const AssignerResult& serial,
                      const AssignerResult& parallel) {
  EXPECT_EQ(serial.plan.device_order, parallel.plan.device_order);
  EXPECT_EQ(serial.plan.boundaries, parallel.plan.boundaries);
  EXPECT_EQ(serial.plan.layer_bits, parallel.plan.layer_bits);
  EXPECT_EQ(serial.plan.prefill_micro_batch,
            parallel.plan.prefill_micro_batch);
  EXPECT_EQ(serial.plan.decode_micro_batch, parallel.plan.decode_micro_batch);
  EXPECT_EQ(serial.estimate.objective, parallel.estimate.objective);
  EXPECT_EQ(serial.estimate.e2e_latency, parallel.estimate.e2e_latency);
  EXPECT_EQ(serial.stats.combos_tried, parallel.stats.combos_tried);
}

// The parallel combo sweep reduces results in combo order, so the chosen
// plan must be bit-identical to the serial baseline on every cluster and
// thread count (DESIGN.md "Planner performance & parallel search").
TEST(AssignerParallel, HeuristicPlanIdenticalToSerial) {
  ASSERT_TRUE(kPoolEnvReady);
  for (const int cluster : {3, 4}) {
    AssignerOptions opt;
    opt.solver = SolverKind::kHeuristic;
    opt.max_orderings = 4;
    const AssignerResult serial = run_assign(cluster, opt, /*threads=*/1);
    EXPECT_EQ(serial.stats.search_threads, 1);
    const AssignerResult parallel = run_assign(cluster, opt, /*threads=*/0);
    if (ThreadPool::shared().size() > 1)
      EXPECT_GT(parallel.stats.search_threads, 1);
    expect_identical(serial, parallel);
  }
}

// Pass 2's concurrent refinements pool incumbents through one atomic; the
// strictly-greater pruning keeps the pooled best schedule-independent, so
// parallel refinement must pick the same plan as sequential refinement.
// The config is small enough that every refinement proves optimality well
// inside its budget (truncated solves are inherently timing-dependent).
TEST(AssignerParallel, IlpRefinementIdenticalToSerial) {
  ASSERT_TRUE(kPoolEnvReady);
  AssignerOptions opt;
  opt.solver = SolverKind::kIlp;
  opt.group_size = 1;
  opt.ilp_time_limit_s = 60.0;
  opt.ilp_refine_top = 2;
  const AssignerResult serial = run_assign(1, opt, /*threads=*/1);
  const AssignerResult parallel = run_assign(1, opt, /*threads=*/0);
  EXPECT_EQ(serial.stats.ilp_solves, parallel.stats.ilp_solves);
  expect_identical(serial, parallel);
}

}  // namespace
}  // namespace llmpq
