#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "quant/calibration.hpp"
#include "quant/indicator.hpp"
#include "quant/qgemm.hpp"
#include "quant/qgemm_kernels.hpp"
#include "quant/quality.hpp"
#include "quant/quantize.hpp"

namespace llmpq {
namespace {

std::vector<float> random_weights(std::size_t n, Rng& rng, float scale = 0.1f) {
  std::vector<float> w(n);
  for (float& v : w) v = scale * static_cast<float>(rng.normal());
  return w;
}

TEST(Rounding, QmaxValues) {
  EXPECT_EQ(qmax_for_bits(3), 3);
  EXPECT_EQ(qmax_for_bits(4), 7);
  EXPECT_EQ(qmax_for_bits(8), 127);
  EXPECT_EQ(clamp_to_bits(200, 8), 127);
  EXPECT_EQ(clamp_to_bits(-200, 8), -127);
}

TEST(Rounding, DeterministicRoundsToNearest) {
  Rng rng(1);
  EXPECT_EQ(round_scaled(2.4, Rounding::kDeterministic, rng), 2);
  EXPECT_EQ(round_scaled(2.6, Rounding::kDeterministic, rng), 3);
  EXPECT_EQ(round_scaled(-2.6, Rounding::kDeterministic, rng), -3);
}

TEST(Rounding, StochasticIsUnbiased) {
  Rng rng(2);
  const double x = 1.3;
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i)
    sum += round_scaled(x, Rounding::kStochastic, rng);
  EXPECT_NEAR(sum / n, x, 0.01);
}

class QuantizeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeRoundTrip, ErrorBoundedByHalfScale) {
  const int bits = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(bits));
  const std::size_t rows = 16, cols = 37;  // odd cols stress bit packing
  const auto w = random_weights(rows * cols, rng);
  const QuantizedMatrix q = QuantizedMatrix::quantize(
      w, rows, cols, bits, Rounding::kDeterministic, rng);
  const auto back = q.dequantize();
  for (std::size_t r = 0; r < rows; ++r) {
    const float scale = bits == 16 ? 0.0f : q.scales()[r];
    for (std::size_t c = 0; c < cols; ++c) {
      const float err = std::fabs(back[r * cols + c] - w[r * cols + c]);
      if (bits == 16)
        EXPECT_EQ(err, 0.0f);
      else
        EXPECT_LE(err, 0.5f * scale + 1e-6f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, QuantizeRoundTrip,
                         ::testing::Values(3, 4, 8, 16));

class QuantizedValueRange : public ::testing::TestWithParam<int> {};

TEST_P(QuantizedValueRange, PackedValuesStayInRange) {
  const int bits = GetParam();
  Rng rng(7);
  const std::size_t rows = 5, cols = 33;
  const auto w = random_weights(rows * cols, rng, 2.0f);
  const QuantizedMatrix q = QuantizedMatrix::quantize(
      w, rows, cols, bits, Rounding::kStochastic, rng);
  const std::int32_t qmax = qmax_for_bits(bits);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const std::int32_t v = q.quantized_at(r, c);
      EXPECT_GE(v, -qmax);
      EXPECT_LE(v, qmax);
    }
}

INSTANTIATE_TEST_SUITE_P(LowBits, QuantizedValueRange,
                         ::testing::Values(3, 4, 8));

TEST(Quantize, PackedBytesShrinkWithBits) {
  Rng rng(3);
  const std::size_t rows = 64, cols = 64;
  const auto w = random_weights(rows * cols, rng);
  std::size_t prev = SIZE_MAX;
  for (int bits : {16, 8, 4, 3}) {
    const QuantizedMatrix q = QuantizedMatrix::quantize(
        w, rows, cols, bits, Rounding::kDeterministic, rng);
    EXPECT_LT(q.packed_bytes(), prev);
    prev = q.packed_bytes();
  }
}

TEST(Qgemm, MatchesFloatGemmAt16Bits) {
  // Pinned to the scalar kernel: this test asserts bit-exact agreement
  // with gemm_f32, which only the reference accumulation order gives.
  // SIMD-vs-scalar agreement is covered in test_qgemm_kernels.cpp.
  ScopedSimdLevel pin(SimdLevel::kScalar);
  Rng rng(4);
  const std::size_t m = 7, k = 19, n = 11;
  const auto x = random_weights(m * k, rng);
  const auto w = random_weights(n * k, rng);
  const auto bias = random_weights(n, rng);
  const QuantizedMatrix qw =
      QuantizedMatrix::quantize(w, n, k, 16, Rounding::kDeterministic, rng);
  std::vector<float> y1(m * n), y2(m * n);
  qgemm(x, m, k, qw, bias, y1);
  gemm_f32(x, m, k, w, n, bias, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

// ---- The threaded kernel must be bit-for-bit identical to the serial
// seed kernel (each output element keeps its accumulation order) and, for
// 16-bit, to the fp32 ground truth — across every width x rounding mode,
// at a size large enough to actually engage the thread pool.
struct QgemmCase {
  int bits;
  Rounding mode;
};

class QgemmEquivalence : public ::testing::TestWithParam<QgemmCase> {};

TEST_P(QgemmEquivalence, ThreadedMatchesSerialAndF32) {
  // Scalar-pinned: thread decomposition must not change results, which is
  // only a bit-exact statement when both paths run the reference kernel.
  ScopedSimdLevel pin(SimdLevel::kScalar);
  const QgemmCase c = GetParam();
  Rng rng(900 + static_cast<std::uint64_t>(c.bits));
  // Odd k stresses the bit-packing spill-word path; m*k*n > the kernel's
  // parallel threshold so the pooled path runs (on multi-core hosts).
  const std::size_t m = 5, k = 257, n = 96;
  const auto x = random_weights(m * k, rng, 1.0f);
  const auto w = random_weights(n * k, rng, 0.05f);
  const auto bias = random_weights(n, rng, 0.2f);
  const QuantizedMatrix qw =
      QuantizedMatrix::quantize(w, n, k, c.bits, c.mode, rng);

  std::vector<float> y_threaded(m * n), y_serial(m * n), y_f32(m * n);
  qgemm(x, m, k, qw, bias, y_threaded);
  qgemm_serial(x, m, k, qw, bias, y_serial);
  gemm_f32(x, m, k, qw.dequantize(), n, bias, y_f32);
  for (std::size_t i = 0; i < y_threaded.size(); ++i) {
    EXPECT_EQ(y_threaded[i], y_serial[i]) << "i=" << i;
    // Same dequantized weights, same accumulation order -> exact.
    EXPECT_EQ(y_threaded[i], y_f32[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QgemmEquivalence,
    ::testing::Values(QgemmCase{3, Rounding::kDeterministic},
                      QgemmCase{3, Rounding::kStochastic},
                      QgemmCase{4, Rounding::kDeterministic},
                      QgemmCase{4, Rounding::kStochastic},
                      QgemmCase{8, Rounding::kDeterministic},
                      QgemmCase{8, Rounding::kStochastic},
                      QgemmCase{16, Rounding::kDeterministic},
                      QgemmCase{16, Rounding::kStochastic}));

TEST(Qgemm, QuantizedOutputCloseToFloat) {
  Rng rng(5);
  const std::size_t m = 4, k = 64, n = 16;
  const auto x = random_weights(m * k, rng, 1.0f);
  const auto w = random_weights(n * k, rng, 0.05f);
  const QuantizedMatrix qw =
      QuantizedMatrix::quantize(w, n, k, 8, Rounding::kDeterministic, rng);
  std::vector<float> yq(m * n), yf(m * n);
  qgemm(x, m, k, qw, {}, yq);
  gemm_f32(x, m, k, w, n, {}, yf);
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < yq.size(); ++i) {
    err += std::fabs(yq[i] - yf[i]);
    ref += std::fabs(yf[i]);
  }
  EXPECT_LT(err / ref, 0.02);  // 8-bit relative error ~ scale/127
}

// ---- Theorem 1: the rounding-variance upper bound holds on real numerics.
class VarianceBound : public ::testing::TestWithParam<int> {};

TEST_P(VarianceBound, EmpiricalVarianceBelowTheoremBound) {
  const int bits = GetParam();
  Rng rng(600 + static_cast<std::uint64_t>(bits));
  const std::size_t k = 128, n = 8, m = 256;  // W [n x k], X: m samples
  const auto w = random_weights(n * k, rng, 0.08f);
  const auto x = random_weights(m * k, rng, 1.0f);

  const QuantizedMatrix qw = QuantizedMatrix::quantize(
      w, n, k, bits, Rounding::kDeterministic, rng);
  std::vector<float> y_q(m * n), y_f(m * n);
  qgemm(x, m, k, qw, {}, y_q);
  gemm_f32(x, m, k, w, n, {}, y_f);

  // Empirical variance of the perturbation (W~X - WX) over outputs.
  RunningStats pert;
  for (std::size_t i = 0; i < y_q.size(); ++i)
    pert.add(static_cast<double>(y_q[i]) - static_cast<double>(y_f[i]));

  // Theorem 1 bound (deterministic rounding): D_W * S^2/4 * Var[X] with
  // D_W = k accumulated elements; use the max row scale.
  const ActivationStats xs = collect_activation_stats(x);
  double max_scale = 0.0;
  for (float s : qw.scales()) max_scale = std::max(max_scale, (double)s);
  const double bound = static_cast<double>(k) * max_scale * max_scale *
                       g_of_x(xs, Rounding::kDeterministic);
  EXPECT_LE(pert.variance(), bound * 1.05);
  EXPECT_GT(pert.variance(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Bits, VarianceBound, ::testing::Values(3, 4, 8));

TEST(Calibration, GofXFormulas) {
  const ActivationStats s{0.5, 2.0};
  EXPECT_DOUBLE_EQ(g_of_x(s, Rounding::kDeterministic), 0.5);
  EXPECT_DOUBLE_EQ(g_of_x(s, Rounding::kStochastic), (0.25 + 2.0) / 6.0);
}

TEST(Calibration, SynthStatsDeterministicAndDepthTrending) {
  const ModelSpec& m = model_registry_get("opt-13b");
  const WeightStats a = synth_weight_stats(m, 3, "qkv");
  const WeightStats b = synth_weight_stats(m, 3, "qkv");
  EXPECT_DOUBLE_EQ(a.std_dev, b.std_dev);
  // Depth trend on average: last-quarter layers wider than first-quarter.
  double early = 0, late = 0;
  for (int i = 0; i < m.layers / 4; ++i)
    early += synth_weight_stats(m, i, "fc1").std_dev;
  for (int i = 3 * m.layers / 4; i < m.layers; ++i)
    late += synth_weight_stats(m, i, "fc1").std_dev;
  EXPECT_GT(late, early);
}

TEST(Indicator, OmegaMonotoneInBits) {
  const ModelSpec& m = model_registry_get("opt-1.3b");
  const IndicatorResult ind =
      compute_indicator(m, IndicatorKind::kVariance);
  for (int i = 0; i < m.layers; ++i) {
    EXPECT_GT(ind.at(i, 3), ind.at(i, 4));
    EXPECT_GT(ind.at(i, 4), ind.at(i, 8));
    EXPECT_EQ(ind.at(i, 16), 0.0);
  }
}

TEST(Indicator, NormalizedToUnitMeanAt4Bits) {
  for (const char* name : {"opt-13b", "bloom-3b"}) {
    const ModelSpec& m = model_registry_get(name);
    for (IndicatorKind kind : {IndicatorKind::kVariance,
                               IndicatorKind::kHessian,
                               IndicatorKind::kRandom}) {
      const IndicatorResult ind = compute_indicator(m, kind);
      double mean4 = 0.0;
      for (int i = 0; i < m.layers; ++i) mean4 += ind.at(i, 4);
      EXPECT_NEAR(mean4 / m.layers, kOmegaScale, 1e-9) << name;
    }
  }
}

TEST(Indicator, VarianceTracksTruthBetterThanRandom) {
  const ModelSpec& m = model_registry_get("opt-30b");
  const auto var = compute_indicator(m, IndicatorKind::kVariance);
  const auto rnd = compute_indicator(m, IndicatorKind::kRandom);
  // Rank correlation proxy: sum over layers of |omega - truth_shape|, with
  // both normalized; the variance indicator must be closer.
  double truth_sum = 0.0;
  std::vector<double> truth(static_cast<std::size_t>(m.layers));
  for (int i = 0; i < m.layers; ++i) {
    truth[static_cast<std::size_t>(i)] = true_layer_ppl_delta(m, i, 4);
    truth_sum += truth[static_cast<std::size_t>(i)];
  }
  double var_err = 0.0, rnd_err = 0.0;
  for (int i = 0; i < m.layers; ++i) {
    const double t = truth[static_cast<std::size_t>(i)] / truth_sum *
                     static_cast<double>(m.layers) * kOmegaScale;
    var_err += std::fabs(var.at(i, 4) - t);
    rnd_err += std::fabs(rnd.at(i, 4) - t);
  }
  EXPECT_LT(var_err, rnd_err);
}

TEST(Indicator, OverheadOrdering) {
  const ModelSpec& m = model_registry_get("opt-66b");
  const double v = indicator_overhead_s(m, IndicatorKind::kVariance);
  const double h = indicator_overhead_s(m, IndicatorKind::kHessian);
  EXPECT_EQ(indicator_overhead_s(m, IndicatorKind::kRandom), 0.0);
  // Table 6: Hessian is ~58-73x costlier than the variance indicator.
  EXPECT_GT(h / v, 40.0);
  EXPECT_LT(h / v, 100.0);
  // Magnitudes: variance for OPT-66b took ~435 s in the paper.
  EXPECT_GT(v, 100.0);
  EXPECT_LT(v, 2000.0);
}

TEST(Quality, UniformPplMonotoneInBits) {
  for (const char* name : {"opt-13b", "opt-30b", "opt-66b", "bloom-176b"}) {
    const ModelSpec& m = model_registry_get(name);
    EXPECT_GT(uniform_ppl(m, 3), uniform_ppl(m, 4)) << name;
    EXPECT_GT(uniform_ppl(m, 4), uniform_ppl(m, 8)) << name;
    EXPECT_NEAR(uniform_ppl(m, 8), m.ppl_fp16, 0.1) << name;
    EXPECT_DOUBLE_EQ(uniform_ppl(m, 16), m.ppl_fp16);
  }
}

TEST(Quality, Uniform4MatchesCalibrationTarget) {
  const ModelSpec& m = model_registry_get("opt-13b");
  EXPECT_NEAR(uniform_ppl(m, 4) - m.ppl_fp16,
              model_ppl_delta_at_uniform4(m), 0.02);
}

TEST(Quality, LaterLayersMoreSensitive) {
  // Table 1 shape: quantizing the last third hurts more than the first.
  for (const char* name : {"opt-1.3b", "bloom-3b"}) {
    const ModelSpec& m = model_registry_get(name);
    const int third = m.layers / 3;
    std::vector<int> first(static_cast<std::size_t>(m.layers), 16);
    std::vector<int> last(static_cast<std::size_t>(m.layers), 16);
    for (int i = 0; i < third; ++i) first[static_cast<std::size_t>(i)] = 4;
    for (int i = m.layers - third; i < m.layers; ++i)
      last[static_cast<std::size_t>(i)] = 4;
    EXPECT_LT(plan_ppl(m, first), plan_ppl(m, last)) << name;
  }
}

TEST(Quality, MixedBeatsUniformLow) {
  // Fig 4 shape: mixed4-8 is better than uniform 4-bit, mixed3-4 better
  // than uniform 3-bit.
  const ModelSpec& m = model_registry_get("bloom-3b");
  Rng rng(21);
  std::vector<int> mixed48(static_cast<std::size_t>(m.layers));
  std::vector<int> mixed34(static_cast<std::size_t>(m.layers));
  for (auto& b : mixed48) b = rng.uniform() < 0.5 ? 4 : 8;
  for (auto& b : mixed34) b = rng.uniform() < 0.5 ? 3 : 4;
  EXPECT_LT(plan_ppl(m, mixed48), uniform_ppl(m, 4));
  EXPECT_LT(plan_ppl(m, mixed34), uniform_ppl(m, 3));
}

TEST(Quality, AccuracyDropsWithQuantization) {
  const ModelSpec& m = model_registry_get("opt-1.3b");
  EXPECT_LT(uniform_accuracy(m, 4), m.acc_fp16);
  EXPECT_LT(uniform_accuracy(m, 3), uniform_accuracy(m, 4));
  EXPECT_NEAR(uniform_accuracy(m, 16), m.acc_fp16, 1e-12);
}

TEST(Quality, LargerModelsDegradeLess) {
  const double d13 = model_ppl_delta_at_uniform4(model_registry_get("opt-13b"));
  const double d30 = model_ppl_delta_at_uniform4(model_registry_get("opt-30b"));
  EXPECT_GT(d13, d30);
}

// Shape sweep: packing/unpacking must be exact for awkward row widths
// (word-straddling bit offsets) at every candidate width.
struct ShapeCase {
  int rows;
  int cols;
  int bits;
};

class QuantizeShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(QuantizeShapeSweep, PackUnpackRoundTripsExactly) {
  const ShapeCase c = GetParam();
  Rng rng(7000 + static_cast<std::uint64_t>(c.rows * 131 + c.cols * 7 + c.bits));
  const auto rows = static_cast<std::size_t>(c.rows);
  const auto cols = static_cast<std::size_t>(c.cols);
  const auto w = random_weights(rows * cols, rng);
  const QuantizedMatrix q = QuantizedMatrix::quantize(
      w, rows, cols, c.bits, Rounding::kDeterministic, rng);
  // quantized_at and dequantize_row must agree element-for-element.
  std::vector<float> row(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    q.dequantize_row(r, row.data());
    for (std::size_t col = 0; col < cols; ++col) {
      const float expect =
          static_cast<float>(q.quantized_at(r, col)) * q.scales()[r];
      EXPECT_FLOAT_EQ(row[col], expect) << r << "," << col;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QuantizeShapeSweep,
    ::testing::Values(ShapeCase{1, 1, 3}, ShapeCase{1, 31, 3},
                      ShapeCase{3, 33, 3}, ShapeCase{2, 63, 3},
                      ShapeCase{1, 1, 4}, ShapeCase{5, 17, 4},
                      ShapeCase{4, 129, 4}, ShapeCase{1, 1, 8},
                      ShapeCase{7, 5, 8}, ShapeCase{2, 255, 8},
                      ShapeCase{3, 85, 3}, ShapeCase{6, 11, 4}));

}  // namespace
}  // namespace llmpq
