#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "solver/simplex.hpp"

namespace llmpq {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), obj 36.
  LpProblem p;
  const int x = p.add_var(0, kLpInf, -3.0);
  const int y = p.add_var(0, kLpInf, -5.0);
  p.add_row({{x, 1.0}}, LpProblem::RowType::kLe, 4.0);
  p.add_row({{y, 2.0}}, LpProblem::RowType::kLe, 12.0);
  p.add_row({{x, 3.0}, {y, 2.0}}, LpProblem::RowType::kLe, 18.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-7);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
  EXPECT_NEAR(s.x[1], 6.0, 1e-7);
}

TEST(Simplex, HandlesEqualityAndGe) {
  // min x + 2y s.t. x + y = 10, x >= 3, y >= 2 -> x=8, y=2, obj 12.
  LpProblem p;
  const int x = p.add_var(0, kLpInf, 1.0);
  const int y = p.add_var(0, kLpInf, 2.0);
  p.add_row({{x, 1.0}, {y, 1.0}}, LpProblem::RowType::kEq, 10.0);
  p.add_row({{x, 1.0}}, LpProblem::RowType::kGe, 3.0);
  p.add_row({{y, 1.0}}, LpProblem::RowType::kGe, 2.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-7);
  EXPECT_NEAR(s.x[0], 8.0, 1e-7);
  EXPECT_NEAR(s.x[1], 2.0, 1e-7);
}

TEST(Simplex, RespectsVariableUpperBounds) {
  // min -x - y with x in [0, 3], y in [0, 2], x + y <= 4 -> obj -4 at
  // any point on the segment; check bounds hold and objective is right.
  LpProblem p;
  const int x = p.add_var(0, 3, -1.0);
  const int y = p.add_var(0, 2, -1.0);
  p.add_row({{x, 1.0}, {y, 1.0}}, LpProblem::RowType::kLe, 4.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-7);
  EXPECT_LE(s.x[0], 3.0 + 1e-9);
  EXPECT_LE(s.x[1], 2.0 + 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblem p;
  const int x = p.add_var(0, kLpInf, 1.0);
  p.add_row({{x, 1.0}}, LpProblem::RowType::kLe, 1.0);
  p.add_row({{x, 1.0}}, LpProblem::RowType::kGe, 2.0);
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LpProblem p;
  const int x = p.add_var(0, kLpInf, -1.0);  // minimize -x, x unbounded
  p.add_row({{x, -1.0}}, LpProblem::RowType::kLe, 0.0);  // -x <= 0
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, HandlesNegativeLowerBounds) {
  // min x with x in [-5, 5], x >= -3  ->  x = -3.
  LpProblem p;
  const int x = p.add_var(-5, 5, 1.0);
  p.add_row({{x, 1.0}}, LpProblem::RowType::kGe, -3.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -3.0, 1e-7);
}

TEST(Simplex, FreeVariable) {
  // min y s.t. y >= x - 2, y >= -x, x free in [-inf, inf].
  // Optimum y = -1 at x = 1.
  LpProblem p;
  const int x = p.add_var(-kLpInf, kLpInf, 0.0);
  const int y = p.add_var(-kLpInf, kLpInf, 1.0);
  p.add_row({{y, 1.0}, {x, -1.0}}, LpProblem::RowType::kGe, -2.0);
  p.add_row({{y, 1.0}, {x, 1.0}}, LpProblem::RowType::kGe, 0.0);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Highly degenerate: many redundant constraints through the origin.
  LpProblem p;
  const int x = p.add_var(0, kLpInf, -1.0);
  const int y = p.add_var(0, kLpInf, -1.0);
  for (int k = 1; k <= 8; ++k)
    p.add_row({{x, static_cast<double>(k)}, {y, 1.0}},
              LpProblem::RowType::kLe, static_cast<double>(k));
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Optimum: x=0,y=1 (obj -1)? check: constraint k: kx + y <= k. At x=1,y=0
  // all hold (k <= k): obj -1 too. Optimum is max x+y on the polytope:
  // vertex x=0,y=1 gives 1; x=1,y=0 gives 1; mixed k=1: x+y<=1. So -1.
  EXPECT_NEAR(s.objective, -1.0, 1e-7);
}

// Property sweep: random LPs with a known feasible box interior point must
// never report infeasible, and the returned solution must satisfy all rows.
class SimplexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomTest, SolutionsAreFeasible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const int n = 3 + GetParam() % 5;
  const int m = 2 + GetParam() % 7;
  LpProblem p;
  for (int j = 0; j < n; ++j)
    p.add_var(0.0, rng.uniform(1.0, 5.0), rng.uniform(-2.0, 2.0));
  // Rows a.x <= b with b chosen so x=0 is feasible (b >= 0).
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    std::vector<double> dense(static_cast<std::size_t>(n), 0.0);
    for (int j = 0; j < n; ++j) {
      const double c = rng.uniform(-1.0, 1.0);
      dense[static_cast<std::size_t>(j)] = c;
      coeffs.push_back({j, c});
    }
    const double rhs = rng.uniform(0.5, 4.0);
    rows.push_back(dense);
    rows.back().push_back(rhs);
    p.add_row(std::move(coeffs), LpProblem::RowType::kLe, rhs);
  }
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  for (const auto& row : rows) {
    double lhs = 0.0;
    for (int j = 0; j < n; ++j)
      lhs += row[static_cast<std::size_t>(j)] * s.x[static_cast<std::size_t>(j)];
    EXPECT_LE(lhs, row.back() + 1e-6);
  }
  for (int j = 0; j < n; ++j) {
    EXPECT_GE(s.x[static_cast<std::size_t>(j)], -1e-9);
    EXPECT_LE(s.x[static_cast<std::size_t>(j)],
              p.upper()[static_cast<std::size_t>(j)] + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexRandomTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace llmpq
