#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "cost/cost_provider.hpp"
#include "cost/ground_truth.hpp"
#include "cost/latency_model.hpp"
#include "cost/mem_model.hpp"
#include "quant/format.hpp"
#include "quant/quantize.hpp"
#include "cost/profiler.hpp"

namespace llmpq {
namespace {

TEST(MemModel, WeightBytesScaleWithBits) {
  const ModelSpec& m = model_registry_get("opt-13b");
  const auto b16 = layer_weight_bytes(m, 16);
  const auto b8 = layer_weight_bytes(m, 8);
  const auto b4 = layer_weight_bytes(m, 4);
  const auto b3 = layer_weight_bytes(m, 3);
  EXPECT_GT(b16, b8);
  EXPECT_GT(b8, b4);
  EXPECT_GT(b4, b3);
  // Linear-dominated: 8-bit is within a few % of half of 16-bit.
  EXPECT_NEAR(static_cast<double>(b8) / static_cast<double>(b16), 0.5, 0.02);
}

TEST(MemModel, TotalWeightsMatchNameplate) {
  // OPT-30b at FP16: ~60 GB of decoder weights + embeddings.
  const ModelSpec& m = model_registry_get("opt-30b");
  const double total_gb =
      (static_cast<double>(m.layers) *
           static_cast<double>(layer_weight_bytes(m, 16)) +
       static_cast<double>(embedding_weight_bytes(m))) /
      1e9;
  EXPECT_GT(total_gb, 55.0);
  EXPECT_LT(total_gb, 70.0);
}

// ---- The planner's weight-bytes formula must equal the bytes the
// runtime actually packs — byte-for-byte, across every bits x format
// pair. The seed version charged 2 bytes per scale while QuantizedMatrix
// stores float32 scales, a systematic underestimate that let plans pass
// the memory check and then OOM at load time.
TEST(MemModel, QuantizedWeightBytesMatchPackedMatricesExactly) {
  ModelSpec m;
  m.name = "tiny-mem";
  m.family = "opt";
  m.hidden = 48;
  m.ffn = 192;
  m.heads = 4;
  m.layers = 2;
  m.vocab = 96;
  m.max_pos = 64;
  Rng rng(11);
  for (QuantFormat format : kQuantFormats) {
    for (int bits : {3, 4, 8}) {
      std::int64_t packed = 0;
      for (const LinearOp& op : m.layer_linear_ops()) {
        const std::size_t rows = static_cast<std::size_t>(op.out_dim);
        const std::size_t cols = static_cast<std::size_t>(op.in_dim);
        const std::vector<float> w(rows * cols, 0.25f);
        const QuantizedMatrix q = QuantizedMatrix::quantize(
            w, rows, cols, bits, Rounding::kDeterministic, rng, format);
        packed += static_cast<std::int64_t>(q.packed_bytes());
      }
      EXPECT_EQ(layer_quantized_weight_bytes(m, bits, format), packed)
          << quant_format_name(format) << " bits=" << bits;
    }
    // 16-bit stays the analytic device-FP16 model (2 bytes/param): the
    // runtime's float matrices are host staging, not the device layout.
    std::int64_t params = 0;
    for (const LinearOp& op : m.layer_linear_ops()) params += op.weight_params();
    EXPECT_EQ(layer_quantized_weight_bytes(m, 16, format), params * 2);
  }
}

TEST(MemModel, GroupFormatsChargeMetadataOverhead) {
  const ModelSpec& m = model_registry_get("opt-13b");
  for (int bits : {3, 4, 8}) {
    const std::int64_t pc =
        layer_weight_bytes(m, bits, QuantFormat::kPerChannel);
    const std::int64_t g32 = layer_weight_bytes(m, bits, QuantFormat::kGroup32);
    const std::int64_t g64 = layer_weight_bytes(m, bits, QuantFormat::kGroup64);
    // Group metadata costs real bytes; 64-wide groups cost less than
    // 32-wide; both exceed one scale per output channel.
    EXPECT_GT(g64, pc);
    EXPECT_GT(g32, g64);
  }
}

TEST(MemModel, KvBytesFormula) {
  const ModelSpec& m = model_registry_get("opt-13b");
  // 2 (K,V) * batch * seq * hidden * 2 bytes.
  EXPECT_EQ(layer_kv_bytes(m, 32, 612), 2LL * 32 * 612 * m.hidden * 2);
}

TEST(MemModel, StageMemoryAddsEmbeddingOnEdges) {
  const ModelSpec& m = model_registry_get("opt-13b");
  Workload w;
  const std::vector<int> bits(4, 8);
  const StageMemory mid = stage_memory(m, bits, w, 4, 8, false, false);
  const StageMemory first = stage_memory(m, bits, w, 4, 8, true, false);
  const StageMemory last = stage_memory(m, bits, w, 4, 8, false, true);
  EXPECT_EQ(mid.embedding, 0);
  EXPECT_EQ(first.embedding, embedding_weight_bytes(m));
  EXPECT_EQ(last.embedding, lm_head_bytes(m));
  EXPECT_GT(first.total(), mid.total());
}

TEST(MemModel, TempPeakGrowsWithMicrobatch) {
  const ModelSpec& m = model_registry_get("opt-30b");
  Workload w;
  EXPECT_GT(temp_peak_bytes(m, w, 8, 8), temp_peak_bytes(m, w, 1, 8));
}

TEST(GroundTruth, P100PrefillRatioMatchesPaper) {
  // Fig 3: FP16 prefill on P100 ~14.5x V100; decode ratio far smaller.
  const ModelSpec& m = model_registry_get("opt-30b");
  const auto& p100 = gpu_registry_get("P100-12G");
  const auto& v100 = gpu_registry_get("V100-32G");
  const PhaseShape pre = prefill_shape(8, 512);
  const double ratio_pre = layer_time_ground_truth(p100, m, pre, 16) /
                           layer_time_ground_truth(v100, m, pre, 16);
  EXPECT_GT(ratio_pre, 10.0);
  EXPECT_LT(ratio_pre, 19.0);
  const PhaseShape dec = decode_shape(8, 512);
  const double ratio_dec = layer_time_ground_truth(p100, m, dec, 16) /
                           layer_time_ground_truth(v100, m, dec, 16);
  EXPECT_LT(ratio_dec, 2.0);
  EXPECT_GT(ratio_dec, 1.0);
}

TEST(GroundTruth, V100Int8SlowerThanFp16BothPhases) {
  const ModelSpec& m = model_registry_get("opt-30b");
  const auto& v100 = gpu_registry_get("V100-32G");
  EXPECT_GT(layer_time_ground_truth(v100, m, prefill_shape(8, 512), 8),
            layer_time_ground_truth(v100, m, prefill_shape(8, 512), 16));
  EXPECT_GT(layer_time_ground_truth(v100, m, decode_shape(8, 512), 8),
            layer_time_ground_truth(v100, m, decode_shape(8, 512), 16));
}

TEST(GroundTruth, T4Int8ComparableToFp16) {
  // Paper Sec 2.5: T4's INT8 tensor cores make 8-bit ~ FP16.
  const ModelSpec& m = model_registry_get("opt-30b");
  const auto& t4 = gpu_registry_get("T4-16G");
  const double r8 = layer_time_ground_truth(t4, m, prefill_shape(8, 512), 8) /
                    layer_time_ground_truth(t4, m, prefill_shape(8, 512), 16);
  EXPECT_LT(r8, 1.15);
  EXPECT_GT(r8, 0.5);
}

TEST(GroundTruth, WeightOnlyQuantFasterInDecodeSlowerInPrefill) {
  // Fig 5 shape: 4-bit GPTQ kernels lose on compute-bound prefill, win on
  // memory-bound decode.
  const ModelSpec& m = model_registry_get("opt-30b");
  const auto& a100 = gpu_registry_get("A100-40G");
  EXPECT_GT(layer_time_ground_truth(a100, m, prefill_shape(8, 512), 4),
            layer_time_ground_truth(a100, m, prefill_shape(8, 512), 16));
  EXPECT_LT(layer_time_ground_truth(a100, m, decode_shape(8, 512), 4),
            layer_time_ground_truth(a100, m, decode_shape(8, 512), 16));
}

TEST(GroundTruth, ActivationBytes) {
  const ModelSpec& m = model_registry_get("opt-13b");
  EXPECT_DOUBLE_EQ(activation_bytes(m, prefill_shape(2, 128)),
                   2.0 * 128 * m.hidden * 2);
}

TEST(Profiler, GridCoverageAndDeterminism) {
  const ModelSpec& m = model_registry_get("opt-13b");
  const auto& gpu = gpu_registry_get("V100-32G");
  ProfilerOptions opt;
  const auto r1 = profile_device(m, gpu, opt);
  const auto r2 = profile_device(m, gpu, opt);
  ASSERT_EQ(r1.size(), r2.size());
  EXPECT_EQ(r1.size(), kBitCandidates.size() * opt.batches.size() *
                           (opt.prompt_lens.size() + opt.contexts.size()));
  for (std::size_t i = 0; i < r1.size(); ++i)
    EXPECT_DOUBLE_EQ(r1[i].time_s, r2[i].time_s);
  EXPECT_GT(profiling_cost_s(m, gpu, opt), 0.0);
}

TEST(LatencyModel, FitErrorWithinPaperBound) {
  // Fig 7: average latency cost-model error < 6%.
  const ModelSpec& m = model_registry_get("opt-30b");
  LatencyModel lm(m);
  std::vector<ProfileRecord> all;
  for (const char* g : {"T4-16G", "V100-32G", "A100-40G"}) {
    const auto r = profile_device(m, gpu_registry_get(g));
    all.insert(all.end(), r.begin(), r.end());
  }
  lm.fit(all);
  EXPECT_LT(lm.mean_rel_error(), 0.06);
  EXPECT_LT(lm.worst_mean_rel_error(), 0.09);
}

TEST(LatencyModel, PredictsUnseenShapesWithinTolerance) {
  const ModelSpec& m = model_registry_get("opt-30b");
  const auto& gpu = gpu_registry_get("V100-32G");
  LatencyModel lm(m);
  lm.fit(profile_device(m, gpu));
  // Unseen workloads (paper Sec 6.2: batch 3/5/7, past 384/768).
  for (int b : {3, 5, 7}) {
    for (int ctx : {384, 768}) {
      const double pred = lm.predict(gpu.name, 8, Phase::kDecode, b, ctx);
      const double truth =
          layer_time_ground_truth(gpu, m, decode_shape(b, ctx), 8);
      EXPECT_NEAR(pred / truth, 1.0, 0.10) << "b=" << b << " ctx=" << ctx;
    }
    const double pred = lm.predict(gpu.name, 4, Phase::kPrefill, b, 384);
    const double truth =
        layer_time_ground_truth(gpu, m, prefill_shape(b, 384), 4);
    EXPECT_NEAR(pred / truth, 1.0, 0.15);
  }
}

TEST(LatencyModel, ThrowsForUnfittedKey) {
  const ModelSpec& m = model_registry_get("opt-13b");
  LatencyModel lm(m);
  EXPECT_THROW(lm.predict("V100-32G", 8, Phase::kDecode, 4, 512),
               InvalidArgumentError);
}

TEST(CostProvider, FittedAndProfiledModesAgreeApproximately) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider fitted(m, cluster, CostMode::kFitted);
  CostProvider profiled(m, cluster, CostMode::kProfiled);
  EXPECT_GT(fitted.build_cost_s(), 0.0);
  EXPECT_EQ(profiled.build_cost_s(), 0.0);
  for (int dev : {0, 3}) {
    for (int bits : {4, 8, 16}) {
      const double f = fitted.layer_time(dev, bits, Phase::kDecode, 8, 562);
      const double p = profiled.layer_time(dev, bits, Phase::kDecode, 8, 562);
      EXPECT_NEAR(f / p, 1.0, 0.12);
    }
  }
}

TEST(CostProvider, CommTimeZeroWithinDevice) {
  const auto [cluster, model_name] = paper_cluster(3);
  CostProvider cost(model_registry_get(model_name), cluster,
                    CostMode::kProfiled);
  EXPECT_EQ(cost.comm_time(1, 1, Phase::kPrefill, 8), 0.0);
  EXPECT_GT(cost.comm_time(0, 3, Phase::kPrefill, 8), 0.0);
  // Prefill transfers are much larger than decode's single-token ones.
  EXPECT_GT(cost.comm_time(0, 3, Phase::kPrefill, 8),
            cost.comm_time(0, 3, Phase::kDecode, 8));
}

}  // namespace
}  // namespace llmpq
