#include <gtest/gtest.h>

#include "common/args.hpp"
#include "common/error.hpp"

namespace llmpq {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return ArgParser(static_cast<int>(full.size()), full.data());
}

TEST(Args, KeyValueForms) {
  const auto args = parse({"--model-name", "opt", "--theta=2.5", "--fit"});
  EXPECT_EQ(args.get("model-name"), "opt");
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0.0), 2.5);
  EXPECT_TRUE(args.has("fit"));
  EXPECT_EQ(args.get("fit"), std::nullopt);  // bare flag
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_or("missing", "dflt"), "dflt");
}

TEST(Args, RepeatedKeysCollectInOrder) {
  const auto args = parse({"--d", "a", "--d", "b", "--d=c"});
  EXPECT_EQ(args.get_all("d"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(args.get("d"), "c");  // last wins
}

TEST(Args, PositionalAndNumericErrors) {
  const auto args = parse({"run", "--n", "5", "extra"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"run", "extra"}));
  EXPECT_EQ(args.get_long("n", 0), 5);
  const auto bad = parse({"--n", "abc"});
  EXPECT_THROW(bad.get_long("n", 0), InvalidArgumentError);
}

TEST(Args, ValueLookingLikeOptionIsNotConsumed) {
  const auto args = parse({"--flag", "--other", "v"});
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("flag"), std::nullopt);
  EXPECT_EQ(args.get("other"), "v");
}

TEST(SplitCsv, SplitsAndDropsEmpties) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("a,,b,"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_csv("").empty());
}

TEST(ParseIntToken, AcceptsPlainIntegers) {
  EXPECT_EQ(parse_int_token("42", "--n"), 42);
  EXPECT_EQ(parse_int_token("-3", "--n"), -3);
  EXPECT_EQ(parse_int_token("+7", "--n"), 7);
}

TEST(ParseIntToken, RejectsJunkNamingTheToken) {
  // Regression: llmpq-dist used raw std::stoi on --device_numbers tokens,
  // so "3,x" died with an uncaught std::invalid_argument instead of a
  // usage error naming the bad token.
  for (const char* bad : {"x", "3x", "", "1.5", "99999999999999999999"}) {
    try {
      parse_int_token(bad, "--device_numbers");
      FAIL() << "accepted '" << bad << "'";
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find("--device_numbers"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find(bad), std::string::npos);
    }
  }
}

TEST(ParseDoubleToken, AcceptsStandardFloatForms) {
  EXPECT_DOUBLE_EQ(parse_double_token("2.5", "--theta"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double_token("-0.125", "--theta"), -0.125);
  EXPECT_DOUBLE_EQ(parse_double_token("1e3", "--theta"), 1000.0);
}

TEST(ParseDoubleToken, RejectsTrailingJunkNamingTheToken) {
  // Strictness regression: "0.1s" or "5%" must be a usage error naming
  // the flag and token, not a silent prefix parse.
  for (const char* bad : {"x", "0.1s", "5%", "", "1.2.3"}) {
    try {
      parse_double_token(bad, "--max_wait_s");
      FAIL() << "accepted '" << bad << "'";
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find("--max_wait_s"),
                std::string::npos);
    }
  }
}

TEST(Args, NumericFlagsRejectTrailingJunk) {
  // get_long/get_double share the strict token parsers: a typo'd unit
  // suffix fails loudly instead of truncating ("5x" used to parse as 5).
  EXPECT_THROW(parse({"--n", "5x"}).get_long("n", 0), InvalidArgumentError);
  EXPECT_THROW(parse({"--n", "1e3"}).get_long("n", 0), InvalidArgumentError);
  EXPECT_THROW(parse({"--t", "0.1s"}).get_double("t", 0.0),
               InvalidArgumentError);
  // Absent keys and bare flags still fall back instead of throwing.
  EXPECT_EQ(parse({}).get_long("n", 7), 7);
  EXPECT_DOUBLE_EQ(parse({"--flag"}).get_double("flag", 1.5), 1.5);
}

}  // namespace
}  // namespace llmpq
