#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "quant/format.hpp"
#include "quant/qgemm.hpp"
#include "quant/qgemm_kernels.hpp"
#include "quant/quantize.hpp"

namespace llmpq {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng, float scale) {
  std::vector<float> v(n);
  for (float& x : v) x = scale * static_cast<float>(rng.normal());
  return v;
}

std::vector<SimdLevel> available_levels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel l :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (simd_level_available(l)) levels.push_back(l);
  }
  return levels;
}

void run_kernel(SimdLevel level, const std::vector<float>& x, std::size_t m,
                std::size_t k, const QuantizedMatrix& w,
                const std::vector<float>& bias, std::vector<float>& y) {
  std::vector<float> scratch(k);
  qgemm_rows_kernel(level)(x.data(), m, k, w,
                           bias.empty() ? nullptr : bias.data(), y.data(), 0,
                           w.rows(), scratch.data());
}

TEST(SimdLevel, NamesRoundTrip) {
  for (SimdLevel l :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    EXPECT_EQ(simd_level_from_name(simd_level_name(l)), l);
  }
  EXPECT_THROW(simd_level_from_name("sse9"), InvalidArgumentError);
}

TEST(SimdLevel, ScalarAlwaysAvailableAndDispatchClamps) {
  EXPECT_TRUE(simd_level_available(SimdLevel::kScalar));
  // Requesting more than the machine has must clamp, never crash.
  ScopedSimdLevel pin(SimdLevel::kAvx512);
  EXPECT_TRUE(simd_level_available(active_simd_level()));
  EXPECT_NE(qgemm_rows_kernel(active_simd_level()), nullptr);
}

TEST(QuantFormat, NamesRoundTrip) {
  for (QuantFormat f : kQuantFormats) {
    EXPECT_EQ(quant_format_from_name(quant_format_name(f)), f);
  }
  EXPECT_THROW(quant_format_from_name("group128"), InvalidArgumentError);
}

// ---- Group pack/unpack round trip: every dequantized element must land
// within half a quantization step of its source, including ragged last
// groups (cols not divisible by the group size).
TEST(GroupQuant, RoundTripWithinHalfStep) {
  for (QuantFormat format : {QuantFormat::kGroup32, QuantFormat::kGroup64}) {
    const std::size_t gs = format_group_size(format);
    for (int bits : {3, 4, 8}) {
      for (std::size_t cols : {std::size_t{1}, std::size_t{31}, std::size_t{32},
                               std::size_t{33}, std::size_t{64},
                               std::size_t{65}, std::size_t{257}}) {
        Rng rng(1000 + bits + 7 * cols);
        const std::size_t rows = 3;
        const auto w = random_vec(rows * cols, rng, 0.2f);
        const QuantizedMatrix q = QuantizedMatrix::quantize(
            w, rows, cols, bits, Rounding::kDeterministic, rng, format);
        EXPECT_EQ(q.format(), format);
        EXPECT_EQ(q.group_size(), gs);
        EXPECT_EQ(q.groups_per_row(), (cols + gs - 1) / gs);
        const auto deq = q.dequantize();
        const float level_max = static_cast<float>((1 << bits) - 1);
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t g = 0; g < q.groups_per_row(); ++g) {
            const std::size_t c0 = g * gs;
            const std::size_t c1 = std::min(cols, c0 + gs);
            float lo = w[r * cols + c0], hi = lo;
            for (std::size_t c = c0; c < c1; ++c) {
              lo = std::min(lo, w[r * cols + c]);
              hi = std::max(hi, w[r * cols + c]);
            }
            const float step = hi > lo ? (hi - lo) / level_max : 1.0f;
            for (std::size_t c = c0; c < c1; ++c) {
              EXPECT_LE(std::abs(deq[r * cols + c] - w[r * cols + c]),
                        0.5f * step + 1e-6f)
                  << "bits=" << bits << " cols=" << cols << " r=" << r
                  << " c=" << c;
            }
          }
        }
      }
    }
  }
}

TEST(GroupQuant, PackedBytesMatchesStaticFormula) {
  Rng rng(77);
  for (QuantFormat format : kQuantFormats) {
    for (int bits : {3, 4, 8, 16}) {
      const std::size_t rows = 5, cols = 65;
      const auto w = random_vec(rows * cols, rng, 0.1f);
      const QuantizedMatrix q = QuantizedMatrix::quantize(
          w, rows, cols, bits, Rounding::kDeterministic, rng, format);
      EXPECT_EQ(q.packed_bytes(),
                QuantizedMatrix::packed_bytes_for(rows, cols, bits, format))
          << quant_format_name(format) << " bits=" << bits;
    }
  }
}

// ---- Elementwise dequantization must be bit-identical across dispatch
// levels. A one-hot probe x = e_j makes y[r] = dequant(w[r][j]) with every
// other product an exact zero-add, so outputs must match the scalar
// kernel EXACTLY (EXPECT_EQ) — any FMA contraction or reordered
// dequantization arithmetic in a vector kernel fails this.
TEST(QgemmKernels, OneHotProbesAreBitIdenticalAcrossLevels) {
  const auto levels = available_levels();
  const std::size_t k = 97, n = 16;
  for (QuantFormat format : kQuantFormats) {
    for (int bits : {3, 4, 8, 16}) {
      if (bits == 16 && format != QuantFormat::kPerChannel) continue;
      Rng rng(50 + bits);
      const auto w = random_vec(n * k, rng, 0.3f);
      const QuantizedMatrix q = QuantizedMatrix::quantize(
          w, n, k, bits, Rounding::kDeterministic, rng, format);
      for (std::size_t j : {std::size_t{0}, std::size_t{31}, std::size_t{32},
                            std::size_t{63}, std::size_t{64}, k - 1}) {
        std::vector<float> x(k, 0.0f);
        x[j] = 1.0f;
        std::vector<float> y_ref(n);
        run_kernel(SimdLevel::kScalar, x, 1, k, q, {}, y_ref);
        for (SimdLevel level : levels) {
          std::vector<float> y(n);
          run_kernel(level, x, 1, k, q, {}, y);
          for (std::size_t r = 0; r < n; ++r) {
            EXPECT_EQ(y[r], y_ref[r])
                << simd_level_name(level) << " " << quant_format_name(format)
                << " bits=" << bits << " j=" << j << " r=" << r;
          }
        }
      }
    }
  }
}

// ---- Full dispatch x format x bits sweep with dense inputs. Vector
// kernels may reorder (and FMA-fuse) the dot-product accumulation only,
// so outputs agree with scalar within a small tolerance: for k = 257
// terms of O(0.05) magnitude, 1e-4 absolute is ~3 orders above observed
// reorder error and ~3 orders below signal.
TEST(QgemmKernels, DenseSweepMatchesScalarWithinTolerance) {
  const auto levels = available_levels();
  const std::size_t m = 3, k = 257, n = 64;
  for (QuantFormat format : kQuantFormats) {
    for (int bits : {3, 4, 8, 16}) {
      if (bits == 16 && format != QuantFormat::kPerChannel) continue;
      Rng rng(900 + bits);
      const auto x = random_vec(m * k, rng, 1.0f);
      const auto w = random_vec(n * k, rng, 0.05f);
      const auto bias = random_vec(n, rng, 0.2f);
      const QuantizedMatrix q = QuantizedMatrix::quantize(
          w, n, k, bits, Rounding::kDeterministic, rng, format);
      std::vector<float> y_ref(m * n);
      run_kernel(SimdLevel::kScalar, x, m, k, q, bias, y_ref);
      for (SimdLevel level : levels) {
        std::vector<float> y(m * n);
        run_kernel(level, x, m, k, q, bias, y);
        for (std::size_t i = 0; i < y.size(); ++i) {
          EXPECT_NEAR(y[i], y_ref[i], 1e-4)
              << simd_level_name(level) << " " << quant_format_name(format)
              << " bits=" << bits << " i=" << i;
        }
      }
    }
  }
}

// ---- Ragged group tails through the kernels: cols that leave a 1-wide
// final group must still agree across levels.
TEST(QgemmKernels, RaggedGroupTailAgrees) {
  const auto levels = available_levels();
  for (QuantFormat format : {QuantFormat::kGroup32, QuantFormat::kGroup64}) {
    const std::size_t k = format_group_size(format) + 1, n = 8, m = 2;
    for (int bits : {3, 4, 8}) {
      Rng rng(40 + bits);
      const auto x = random_vec(m * k, rng, 1.0f);
      const auto w = random_vec(n * k, rng, 0.1f);
      const QuantizedMatrix q = QuantizedMatrix::quantize(
          w, n, k, bits, Rounding::kDeterministic, rng, format);
      std::vector<float> y_ref(m * n);
      run_kernel(SimdLevel::kScalar, x, m, k, q, {}, y_ref);
      for (SimdLevel level : levels) {
        std::vector<float> y(m * n);
        run_kernel(level, x, m, k, q, {}, y);
        for (std::size_t i = 0; i < y.size(); ++i) {
          EXPECT_NEAR(y[i], y_ref[i], 1e-4) << simd_level_name(level);
        }
      }
    }
  }
}

// ---- The public qgemm() entry point must honour the pinned level: its
// output equals a direct call of that level's kernel.
TEST(QgemmKernels, PublicEntryDispatchesPinnedLevel) {
  const std::size_t m = 4, k = 128, n = 32;
  Rng rng(7);
  const auto x = random_vec(m * k, rng, 1.0f);
  const auto w = random_vec(n * k, rng, 0.05f);
  const auto bias = random_vec(n, rng, 0.1f);
  const QuantizedMatrix q = QuantizedMatrix::quantize(
      w, n, k, 4, Rounding::kDeterministic, rng, QuantFormat::kGroup32);
  for (SimdLevel level : available_levels()) {
    ScopedSimdLevel pin(level);
    std::vector<float> y_api(m * n), y_direct(m * n);
    qgemm(x, m, k, q, bias, y_api);
    run_kernel(level, x, m, k, q, bias, y_direct);
    for (std::size_t i = 0; i < y_api.size(); ++i) {
      EXPECT_EQ(y_api[i], y_direct[i]) << simd_level_name(level);
    }
  }
}

}  // namespace
}  // namespace llmpq
