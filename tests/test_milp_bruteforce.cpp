#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "solver/milp.hpp"

namespace llmpq {
namespace {

/// Exhaustive 0/1 enumeration — the oracle the branch-and-bound must match
/// on small instances.
double brute_force_optimum(const MilpProblem& p) {
  const int n = p.lp.num_vars();
  double best = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool ok = true;
    for (int j = 0; j < n && ok; ++j) {
      const double v = (mask >> j) & 1;
      ok = v >= p.lp.lower()[static_cast<std::size_t>(j)] - 1e-9 &&
           v <= p.lp.upper()[static_cast<std::size_t>(j)] + 1e-9;
    }
    for (const auto& row : p.lp.rows()) {
      if (!ok) break;
      double lhs = 0.0;
      for (const auto& [col, coef] : row.coeffs)
        lhs += coef * ((mask >> col) & 1);
      switch (row.type) {
        case LpProblem::RowType::kLe:
          ok = lhs <= row.rhs + 1e-9;
          break;
        case LpProblem::RowType::kGe:
          ok = lhs >= row.rhs - 1e-9;
          break;
        case LpProblem::RowType::kEq:
          ok = std::fabs(lhs - row.rhs) <= 1e-9;
          break;
      }
    }
    if (!ok) continue;
    double obj = 0.0;
    for (int j = 0; j < n; ++j)
      obj += p.lp.objective()[static_cast<std::size_t>(j)] *
             ((mask >> j) & 1);
    best = std::min(best, obj);
  }
  return best;
}

/// Random pure-binary programs with mixed <=, >= and = rows.
MilpProblem random_binary_program(std::uint64_t seed, int vars, int rows) {
  Rng rng(seed);
  MilpProblem p;
  for (int j = 0; j < vars; ++j) {
    const int v = p.lp.add_binary(rng.uniform(-2.0, 2.0));
    p.integer_vars.push_back(v);
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int j = 0; j < vars; ++j)
      if (rng.uniform() < 0.5)
        coeffs.push_back({j, std::floor(rng.uniform(-3.0, 4.0))});
    if (coeffs.empty()) coeffs.push_back({0, 1.0});
    const double roll = rng.uniform();
    if (roll < 0.6)
      p.lp.add_row(std::move(coeffs), LpProblem::RowType::kLe,
                   std::floor(rng.uniform(0.0, 5.0)));
    else if (roll < 0.9)
      p.lp.add_row(std::move(coeffs), LpProblem::RowType::kGe,
                   std::floor(rng.uniform(-4.0, 1.0)));
    else
      p.lp.add_row(std::move(coeffs), LpProblem::RowType::kEq,
                   std::floor(rng.uniform(0.0, 2.0)));
  }
  return p;
}

class MilpBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MilpBruteForce, MatchesExhaustiveEnumeration) {
  const int trial = GetParam();
  const int vars = 4 + trial % 9;              // 4..12 binaries
  const int rows = 2 + (trial * 7) % 6;        // 2..7 rows
  const MilpProblem p =
      random_binary_program(1000 + static_cast<std::uint64_t>(trial) * 37,
                            vars, rows);
  const double oracle = brute_force_optimum(p);
  MilpOptions opt;
  opt.time_limit_s = 20.0;
  const MilpSolution sol = solve_milp(p, opt);
  if (std::isinf(oracle)) {
    EXPECT_EQ(sol.status, MilpStatus::kInfeasible)
        << "vars=" << vars << " rows=" << rows;
  } else {
    ASSERT_EQ(sol.status, MilpStatus::kOptimal)
        << "vars=" << vars << " rows=" << rows;
    EXPECT_NEAR(sol.objective, oracle, 1e-6)
        << "vars=" << vars << " rows=" << rows;
    // The returned assignment must itself achieve the objective.
    double check = 0.0;
    for (int j = 0; j < p.lp.num_vars(); ++j)
      check += p.lp.objective()[static_cast<std::size_t>(j)] *
               sol.x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(check, oracle, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MilpBruteForce, ::testing::Range(0, 60));

}  // namespace
}  // namespace llmpq
