#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "common/error.hpp"
#include "core/assigner.hpp"
#include "quant/quality.hpp"
#include "sim/pipeline_sim.hpp"

namespace llmpq {
namespace {

/// Full-system integration sweep: LLM-PQ (heuristic path) end-to-end on
/// every paper cluster, with cross-cutting invariants checked against the
/// baselines and the simulator.
class PaperClusterSweep : public ::testing::TestWithParam<int> {};

TEST_P(PaperClusterSweep, PlanIsValidFeasibleAndCompetitive) {
  const int cluster_index = GetParam();
  const PaperCluster pc = paper_cluster(cluster_index);
  const ModelSpec& model = model_registry_get(pc.model_name);
  CostProvider cost(model, pc.cluster, CostMode::kFitted);

  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  opt.max_orderings = 4;
  const AssignerResult r = assign(cost, opt);

  // Structural validity.
  r.plan.validate(model.layers, pc.cluster.num_devices());
  EXPECT_TRUE(r.estimate.mem_feasible);
  EXPECT_GT(r.stats.combos_tried, 0);

  // The simulator accepts the plan and roughly agrees with the planner.
  const SimResult sim = simulate_plan(model, pc.cluster, r.plan);
  ASSERT_TRUE(sim.ok) << sim.error;
  EXPECT_GT(sim.throughput_tokens_per_s, 0.0);
  EXPECT_NEAR(r.estimate.e2e_latency / sim.e2e_latency_s, 1.0, 0.6);

  // Memory accounting: every stage under its device budget.
  for (int p = 0; p < r.plan.num_stages(); ++p) {
    const int dev = r.plan.device_order[static_cast<std::size_t>(p)];
    EXPECT_LE(sim.stage_peak_mem[static_cast<std::size_t>(p)],
              pc.cluster.devices[static_cast<std::size_t>(dev)].gpu().mem_bytes);
  }

  // Quality sanity: no plan should be worse than uniform 3-bit or better
  // than the best 8/16-bit mix could be.
  const double ppl = plan_ppl(model, r.plan.layer_bits);
  EXPECT_LE(ppl, uniform_ppl(model, 3) + 1e-9);
  EXPECT_GE(ppl, model.ppl_fp16 - 0.2);

  // Competitiveness: at least as fast as the Uniform baseline when that
  // baseline exists (PipeEdge comparisons live in the bench tables).
  try {
    const ExecutionPlan uni = uniform_plan(cost);
    const SimResult uni_sim = simulate_plan(model, pc.cluster, uni);
    if (uni_sim.ok)
      EXPECT_GE(sim.throughput_tokens_per_s,
                0.95 * uni_sim.throughput_tokens_per_s)
          << "cluster " << cluster_index;
  } catch (const InfeasibleError&) {
    // Uniform OOM (e.g. cluster 8): nothing to compare against.
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaperClusters, PaperClusterSweep,
                         ::testing::Range(1, 12));

/// Serialization survives the full loop on a real planner output.
TEST(Integration, PlanSurvivesStrategyFileRoundTrip) {
  const PaperCluster pc = paper_cluster(3);
  const ModelSpec& model = model_registry_get(pc.model_name);
  CostProvider cost(model, pc.cluster, CostMode::kFitted);
  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  const AssignerResult r = assign(cost, opt);
  const ExecutionPlan back =
      ExecutionPlan::deserialize(r.plan.serialize());
  const SimResult a = simulate_plan(model, pc.cluster, r.plan);
  const SimResult b = simulate_plan(model, pc.cluster, back);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_DOUBLE_EQ(a.e2e_latency_s, b.e2e_latency_s);
}

/// The planner is architecture-parameterized: a LLaMA-style gated-MLP
/// model plans end-to-end on a heterogeneous cluster out of the box.
TEST(Integration, LlamaModelPlansOnHeteroCluster) {
  const ClusterSpec cluster =
      make_cluster("llama-demo", {{"V100-32G", 2}, {"A100-40G", 2}}, 100);
  const ModelSpec& model = model_registry_get("llama-30b");
  CostProvider cost(model, cluster, CostMode::kFitted);
  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  const AssignerResult r = assign(cost, opt);
  r.plan.validate(model.layers, cluster.num_devices());
  const SimResult sim = simulate_plan(model, cluster, r.plan);
  ASSERT_TRUE(sim.ok) << sim.error;
  EXPECT_GT(sim.throughput_tokens_per_s, 0.0);
  EXPECT_LE(plan_ppl(model, r.plan.layer_bits), uniform_ppl(model, 3));
}

/// Determinism: the whole planning pipeline is reproducible from seeds.
TEST(Integration, AssignerIsDeterministic) {
  const PaperCluster pc = paper_cluster(4);
  const ModelSpec& model = model_registry_get(pc.model_name);
  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  CostProvider c1(model, pc.cluster, CostMode::kFitted);
  CostProvider c2(model, pc.cluster, CostMode::kFitted);
  const AssignerResult r1 = assign(c1, opt);
  const AssignerResult r2 = assign(c2, opt);
  EXPECT_EQ(r1.plan.serialize(), r2.plan.serialize());
  EXPECT_DOUBLE_EQ(r1.estimate.objective, r2.estimate.objective);
}

}  // namespace
}  // namespace llmpq
