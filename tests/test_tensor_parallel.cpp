#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/tensor_parallel.hpp"
#include "cost/ground_truth.hpp"

namespace llmpq {
namespace {

TEST(TpDevice, ScalesResourcesAndPaysSyncCost) {
  const GpuSpec& base = gpu_registry_get("V100-32G");
  const LinkSpec nvlink{gBps(300), us(5)};
  const GpuSpec tp2 = make_tp_device(base, 2, nvlink);
  EXPECT_EQ(tp2.mem_bytes, 2 * base.mem_bytes);
  EXPECT_GT(tp2.effective_flops(16), base.effective_flops(16));
  EXPECT_LT(tp2.effective_flops(16), 2.0 * base.effective_flops(16));
  EXPECT_GT(tp2.kernel(16).overhead_s, base.kernel(16).overhead_s);
  EXPECT_EQ(tp2.name, "2xV100-32G(TP)");
  // Degree 1 is the identity.
  EXPECT_EQ(make_tp_device(base, 1, nvlink).name, base.name);
}

TEST(TpDevice, LayerTimeImprovesForComputeBoundWork) {
  // Prefill on a slow device should get meaningfully faster under TP2.
  const ModelSpec& m = model_registry_get("opt-66b");
  const GpuSpec& base = gpu_registry_get("V100-32G");
  const GpuSpec tp2 = make_tp_device(base, 2, {gBps(300), us(5)});
  const double t1 =
      layer_time_ground_truth(base, m, prefill_shape(8, 512), 16);
  const double t2 =
      layer_time_ground_truth(tp2, m, prefill_shape(8, 512), 16);
  EXPECT_LT(t2, t1);
  EXPECT_GT(t2, t1 / 2.0);  // sub-linear because of sync costs
}

TEST(TpFolding, EnumeratesLegalMeshes) {
  // Cluster 7: 4x V100 + 4x A100, one node each -> degrees {1,2,4} per
  // type -> 9 meshes.
  const auto meshes =
      enumerate_tp_foldings(paper_cluster(7).cluster, {1, 2, 4});
  EXPECT_EQ(meshes.size(), 9u);
  // The unfolded mesh must be present (8 devices).
  bool has_unfolded = false, has_tp4 = false;
  for (const auto& mesh : meshes) {
    if (mesh.num_devices() == 8) has_unfolded = true;
    if (mesh.num_devices() == 2) has_tp4 = true;  // both types folded by 4
    // Every folded cluster exposes valid GpuSpecs.
    for (const auto& slot : mesh.devices) EXPECT_GT(slot.gpu().mem_bytes, 0);
  }
  EXPECT_TRUE(has_unfolded);
  EXPECT_TRUE(has_tp4);
}

TEST(TpFolding, NonDividingDegreesAreDropped) {
  // Cluster 3 has 3x T4: degree 2 does not divide 3, so T4 only folds at 1;
  // V100 count is 1, so degrees {1}. Total meshes: 1.
  const auto meshes =
      enumerate_tp_foldings(paper_cluster(3).cluster, {2, 4});
  ASSERT_EQ(meshes.size(), 1u);
  EXPECT_EQ(meshes.front().num_devices(), 4);
}

TEST(TpAssign, NeverWorseThanPipelineOnly) {
  const auto pc = paper_cluster(6);  // 2x V100 + 2x A100
  const ModelSpec& model = model_registry_get(pc.model_name);
  Workload w;
  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  opt.cost_mode = CostMode::kProfiled;
  opt.max_orderings = 4;

  CostProvider pp_cost(model, pc.cluster, CostMode::kProfiled);
  pp_cost.set_workload(w);
  const AssignerResult pp = assign(pp_cost, opt);

  const TpAssignerResult tp =
      assign_with_tensor_parallel(model, pc.cluster, w, opt, {1, 2});
  EXPECT_GE(tp.meshes_tried, 2);
  EXPECT_LE(tp.result.estimate.objective, pp.estimate.objective + 1e-6);
}

}  // namespace
}  // namespace llmpq
