#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "cost/mem_model.hpp"
#include "runtime/engine.hpp"
#include "runtime/kv_cache.hpp"
#include "runtime/microbatch.hpp"
#include "runtime/otf_quantizer.hpp"
#include "runtime/tensor.hpp"
#include "runtime/transformer.hpp"
#include "runtime/weights_io.hpp"

namespace llmpq {
namespace {

ModelSpec tiny_spec(int layers = 6, std::int64_t hidden = 32) {
  ModelSpec m;
  m.name = "tiny-test";
  m.family = "opt";
  m.hidden = hidden;
  m.ffn = 4 * hidden;
  m.heads = 4;
  m.layers = layers;
  m.vocab = 96;
  m.max_pos = 64;
  m.ppl_fp16 = 20.0;
  m.acc_fp16 = 50.0;
  return m;
}

std::vector<std::vector<TokenId>> make_prompts(const ModelSpec& m,
                                               std::size_t batch,
                                               std::size_t len,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<TokenId>> prompts(batch);
  for (auto& p : prompts)
    for (std::size_t t = 0; t < len; ++t)
      p.push_back(static_cast<TokenId>(rng.uniform_int(0, m.vocab - 1)));
  return prompts;
}

TEST(Tensor, LayerNormNormalizesRows) {
  Tensor2D x(2, 8);
  Rng rng(1);
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal(3.0, 2.0));
  std::vector<float> gamma(8, 1.0f), beta(8, 0.0f);
  layer_norm(x, gamma, beta);
  for (std::size_t r = 0; r < 2; ++r) {
    float mean = 0, var = 0;
    for (std::size_t c = 0; c < 8; ++c) mean += x.at(r, c);
    mean /= 8;
    for (std::size_t c = 0; c < 8; ++c)
      var += (x.at(r, c) - mean) * (x.at(r, c) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
  }
}

TEST(Tensor, RmsNormNormalizesScale) {
  Tensor2D x(2, 8);
  Rng rng(2);
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal(0.5, 3.0));
  std::vector<float> gamma(8, 1.0f);
  Tensor2D orig = x;
  rms_norm(x, gamma);
  for (std::size_t r = 0; r < 2; ++r) {
    float ms = 0;
    for (std::size_t c = 0; c < 8; ++c) ms += x.at(r, c) * x.at(r, c);
    EXPECT_NEAR(ms / 8, 1.0f, 1e-3f);
    // No recentring: signs are preserved.
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_EQ(x.at(r, c) >= 0, orig.at(r, c) >= 0);
  }
}

TEST(Tensor, SoftmaxSumsToOne) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f, -1.0f};
  softmax(x);
  float sum = 0;
  for (float v : x) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(x[2], x[1]);
  EXPECT_GT(x[1], x[0]);
}

TEST(KvCacheTest, AppendAndReadBack) {
  KvCache cache(2, 4, 3);
  const float k[3] = {1, 2, 3}, v[3] = {4, 5, 6};
  cache.append(1, k, v);
  EXPECT_EQ(cache.filled(1), 1u);
  EXPECT_EQ(cache.filled(0), 0u);
  EXPECT_FLOAT_EQ(cache.k_at(1, 0)[2], 3.0f);
  EXPECT_FLOAT_EQ(cache.v_at(1, 0)[0], 4.0f);
  EXPECT_EQ(cache.footprint_bytes(), 2u * 4u * 3u * 4u * 2u);
}

TEST(KvCacheTest, OverflowThrows) {
  KvCache cache(1, 1, 2);
  const float kv[2] = {0, 0};
  cache.append(0, kv, kv);
  EXPECT_THROW(cache.append(0, kv, kv), Error);
}

TEST(KvCacheTest, OutOfRangeSequenceIdThrows) {
  // Regression: append/filled used to index filled_[b] before validating
  // b, so an out-of-range sequence id read past the vector instead of
  // throwing.
  KvCache cache(2, 4, 3);
  const float kv[3] = {0, 0, 0};
  EXPECT_THROW(cache.append(2, kv, kv), InvalidArgumentError);
  EXPECT_THROW((void)cache.filled(2), InvalidArgumentError);
  KvCache empty;
  EXPECT_THROW((void)empty.filled(0), InvalidArgumentError);
}

TEST(MicrobatchManagerTest, SlicesCoverBatch) {
  MicrobatchManager mbm(10, 4, 3);
  std::size_t covered = 0;
  for (const auto& s : mbm.prefill_slices()) covered += s.count;
  EXPECT_EQ(covered, 10u);
  EXPECT_EQ(mbm.prefill_slices().size(), 3u);  // 4+4+2
  EXPECT_EQ(mbm.decode_slices().size(), 4u);   // 3+3+3+1
  mbm.begin_phase(3);
  EXPECT_FALSE(mbm.complete_one());
  EXPECT_FALSE(mbm.complete_one());
  EXPECT_TRUE(mbm.complete_one());
  EXPECT_THROW(mbm.complete_one(), Error);
}

TEST(ReferenceGenerate, DeterministicAndCorrectShape) {
  const ModelSpec spec = tiny_spec();
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, bits, 99);
  const auto prompts = make_prompts(spec, 3, 8, 5);
  const auto g1 = reference_generate(mw, prompts, 6);
  const auto g2 = reference_generate(mw, prompts, 6);
  ASSERT_EQ(g1.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(g1[b].size(), 6u);
    EXPECT_EQ(g1[b], g2[b]);
    for (TokenId t : g1[b]) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, spec.vocab);
    }
  }
}

TEST(ReferenceGenerate, QuantizationChangesOutputsGracefully) {
  const ModelSpec spec = tiny_spec();
  const std::vector<int> fp(static_cast<std::size_t>(spec.layers), 16);
  std::vector<int> q3(static_cast<std::size_t>(spec.layers), 3);
  const auto prompts = make_prompts(spec, 2, 8, 6);
  const auto g16 = reference_generate(build_random_model(spec, fp, 42),
                                      prompts, 5);
  const auto g3 = reference_generate(build_random_model(spec, q3, 42),
                                     prompts, 5);
  // 3-bit weights are a different (degraded) model; generation still works.
  ASSERT_EQ(g3.size(), 2u);
  EXPECT_EQ(g3[0].size(), 5u);
  (void)g16;
}

// ---- The core runtime contract: the threaded pipeline engine reproduces
// the single-threaded reference bit-for-bit, across stage splits and
// micro-batch sizings (parameterized sweep).
struct EngineCase {
  int stages;
  int prefill_mb;
  int decode_mb;
};

class EngineEquivalence : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineEquivalence, MatchesReferenceTokens) {
  const EngineCase c = GetParam();
  const ModelSpec spec = tiny_spec(6, 32);
  std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  // Mixed precision: alternate 8/16/4 to exercise quantized paths.
  for (int i = 0; i < spec.layers; ++i)
    bits[static_cast<std::size_t>(i)] = (i % 3 == 0) ? 8 : (i % 3 == 1 ? 16 : 4);
  const ModelWeights mw = build_random_model(spec, bits, 1234);
  const auto prompts = make_prompts(spec, 6, 10, 7);
  const auto ref = reference_generate(mw, prompts, 8);

  std::vector<std::pair<int, int>> ranges;
  const int per = (spec.layers + c.stages - 1) / c.stages;
  for (int p = 0; p < c.stages; ++p)
    ranges.push_back({std::min(spec.layers, p * per),
                      std::min(spec.layers, (p + 1) * per)});
  PipelineEngine engine(mw, ranges, c.prefill_mb, c.decode_mb);
  const auto got = engine.generate(prompts, 8);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t b = 0; b < ref.size(); ++b) EXPECT_EQ(got[b], ref[b]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalence,
    ::testing::Values(EngineCase{1, 6, 6}, EngineCase{1, 2, 3},
                      EngineCase{2, 3, 2}, EngineCase{2, 1, 6},
                      EngineCase{3, 2, 2}, EngineCase{3, 6, 1},
                      EngineCase{4, 2, 3}, EngineCase{6, 1, 1}));

TEST(Engine, ReusableAcrossGenerateCalls) {
  const ModelSpec spec = tiny_spec(4, 32);
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, bits, 5);
  PipelineEngine engine(mw, {{0, 2}, {2, 4}}, 2, 2);
  const auto prompts = make_prompts(spec, 4, 6, 9);
  const auto a = engine.generate(prompts, 4);
  const auto b = engine.generate(prompts, 4);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Engine, RejectsNonTilingRanges) {
  const ModelSpec spec = tiny_spec(4, 32);
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, bits, 5);
  EXPECT_THROW(PipelineEngine(mw, {{0, 2}, {3, 4}}, 2, 2),
               InvalidArgumentError);
  EXPECT_THROW(PipelineEngine(mw, {{0, 2}}, 2, 2), InvalidArgumentError);
}

TEST(Engine, RejectsBadGenerateArguments) {
  const ModelSpec spec = tiny_spec(4, 32);
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, bits, 5);
  // Non-positive micro-batch sizes are a construction-time error.
  EXPECT_THROW(PipelineEngine(mw, {{0, 2}, {2, 4}}, 0, 2),
               InvalidArgumentError);
  EXPECT_THROW(PipelineEngine(mw, {{0, 2}, {2, 4}}, 2, -1),
               InvalidArgumentError);

  PipelineEngine engine(mw, {{0, 2}, {2, 4}}, 2, 2);
  EXPECT_THROW(engine.generate({}, 4), InvalidArgumentError);
  // Zero-length prompts would otherwise slip through as prompt_len == 0.
  std::vector<std::vector<TokenId>> empty_prompts(3);
  EXPECT_THROW(engine.generate(empty_prompts, 4), InvalidArgumentError);
  const auto prompts = make_prompts(spec, 3, 6, 9);
  EXPECT_THROW(engine.generate(prompts, 0), InvalidArgumentError);
  // The engine stays usable after rejected calls.
  EXPECT_EQ(engine.generate(prompts, 4), reference_generate(mw, prompts, 4));
}

// ---- Exception safety: a throw mid-generate() (master side, while
// micro-batches are in flight) must neither terminate nor hang, and the
// same engine must produce correct tokens afterwards.
TEST(Engine, CallerExceptionMidGenerateRecovers) {
  const ModelSpec spec = tiny_spec(4, 32);
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, bits, 21);
  PipelineEngine engine(mw, {{0, 2}, {2, 4}}, 2, 2);

  // Slice {0,2} embeds and enters the pipeline; slice {2,4} contains an
  // out-of-range token, so embed() throws with one micro-batch in flight.
  auto prompts = make_prompts(spec, 4, 6, 17);
  prompts[2][3] = static_cast<TokenId>(spec.vocab);
  EXPECT_THROW(engine.generate(prompts, 5), InvalidArgumentError);

  // The pipeline drained: a clean call on the same engine is exact.
  const auto good = make_prompts(spec, 4, 6, 18);
  EXPECT_EQ(engine.generate(good, 5), reference_generate(mw, good, 5));
}

TEST(Engine, CallerExceptionMidDecodeRecovers) {
  // Positions overflow max_pos during a late decode round, long after
  // prefill succeeded — the engine must unwind from deep inside generate().
  const ModelSpec spec = tiny_spec(4, 32);  // max_pos = 64
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, bits, 23);
  PipelineEngine engine(mw, {{0, 2}, {2, 4}}, 2, 2);
  const auto prompts = make_prompts(spec, 4, 8, 19);
  EXPECT_THROW(engine.generate(prompts, 60), InvalidArgumentError);
  EXPECT_EQ(engine.generate(prompts, 6), reference_generate(mw, prompts, 6));
}

TEST(Engine, WorkerExceptionPropagatesAndRecovers) {
  const ModelSpec spec = tiny_spec(4, 32);
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  ModelWeights mw = build_random_model(spec, bits, 29);
  PipelineEngine engine(mw, {{0, 2}, {2, 4}}, 2, 2);
  const auto prompts = make_prompts(spec, 4, 6, 31);
  const auto ref = reference_generate(mw, prompts, 5);

  // Wipe stage 1's first layer: decoder_layer_forward now throws inside
  // the worker thread; the poisoned micro-batch must carry the error back
  // to the caller instead of terminating the process.
  const LayerWeights saved = std::move(mw.layers[2]);
  mw.layers[2] = LayerWeights{};
  EXPECT_THROW(engine.generate(prompts, 5), Error);

  // Restore the weights (shared, not copied) — the engine works again.
  mw.layers[2] = saved;
  EXPECT_EQ(engine.generate(prompts, 5), ref);
}

TEST(Engine, ReusableAcrossShapesAndResetsKvCaches) {
  // Repeated generate() calls with different batch/prompt shapes on one
  // persistent engine: caches must re-size or reset correctly every time.
  const ModelSpec spec = tiny_spec(4, 32);
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, bits, 37);
  PipelineEngine engine(mw, {{0, 2}, {2, 4}}, 2, 2);
  const auto a = make_prompts(spec, 4, 6, 41);
  const auto b = make_prompts(spec, 3, 9, 43);
  EXPECT_EQ(engine.generate(a, 4), reference_generate(mw, a, 4));
  EXPECT_EQ(engine.generate(b, 5), reference_generate(mw, b, 5));  // resize
  EXPECT_EQ(engine.generate(b, 5), reference_generate(mw, b, 5));  // reuse
  EXPECT_EQ(engine.generate(a, 4), reference_generate(mw, a, 4));  // back
}

TEST(Engine, StatsReportPerStageAndPerPhaseProgress) {
  const ModelSpec spec = tiny_spec(4, 32);
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, bits, 47);
  PipelineEngine engine(mw, {{0, 2}, {2, 4}}, 2, 2);
  const auto prompts = make_prompts(spec, 4, 6, 53);
  (void)engine.generate(prompts, 5);
  (void)engine.generate(prompts, 5);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.generate_calls, 2u);
  ASSERT_EQ(s.stages.size(), 2u);
  for (const StageStats& st : s.stages) {
    EXPECT_GT(st.busy_s, 0.0);
    EXPECT_GT(st.microbatches, 0u);
    EXPECT_GE(st.utilization(), 0.0);
    EXPECT_LE(st.utilization(), 1.0);
    // The busy split is itemized and cannot exceed the total.
    EXPECT_LE(st.qgemm_s + st.attn_s, st.busy_s + 1e-3);
  }
  // 2 calls x 4 prompts x 6 prompt tokens / x 4 decoded tokens.
  EXPECT_EQ(s.prefill.tokens, 2u * 4u * 6u);
  EXPECT_EQ(s.decode.tokens, 2u * 4u * 4u);
  EXPECT_GT(s.prefill.seconds, 0.0);
  EXPECT_GT(s.decode.tokens_per_s(), 0.0);

  const std::string report = format_engine_stats(s);
  EXPECT_NE(report.find("prefill"), std::string::npos);
  EXPECT_NE(report.find("generate() calls: 2"), std::string::npos);
}

TEST(KvCacheTest, ResetClearsFillKeepsCapacity) {
  KvCache cache(2, 3, 4);
  std::vector<float> kv(4, 1.0f);
  cache.append(0, kv.data(), kv.data());
  cache.append(1, kv.data(), kv.data());
  cache.reset();
  EXPECT_EQ(cache.filled(0), 0u);
  EXPECT_EQ(cache.filled(1), 0u);
  EXPECT_EQ(cache.max_seq(), 3u);
  cache.append(0, kv.data(), kv.data());  // usable again after reset
  EXPECT_EQ(cache.filled(0), 1u);
}

TEST(WeightsIo, ShardRoundTrips) {
  const ModelSpec spec = tiny_spec(2, 32);
  Rng rng(11);
  const LayerMaster master = random_layer_master(spec, 0, rng);
  const std::string dir = ::testing::TempDir() + "lpq_shards";
  std::filesystem::create_directories(dir);
  save_layer_shard(shard_filename(dir, 0), spec, 0, master);
  const LayerMaster back = load_layer_shard(shard_filename(dir, 0), spec, 0);
  EXPECT_EQ(back.qkv, master.qkv);
  EXPECT_EQ(back.fc2, master.fc2);
  EXPECT_EQ(back.ln2_beta, master.ln2_beta);
  // Wrong layer index must be rejected.
  EXPECT_THROW(load_layer_shard(shard_filename(dir, 0), spec, 1), Error);
}

TEST(OtfQuantizer, MatchesDirectlyBuiltModel) {
  const ModelSpec spec = tiny_spec(5, 32);
  std::vector<int> bits = {16, 8, 4, 3, 16};
  const std::string dir = ::testing::TempDir() + "lpq_ckpt";
  std::filesystem::create_directories(dir);
  write_random_checkpoint(dir, spec, 77);
  OtfOptions opt;
  opt.seed = 77;
  OtfLoadStats stats;
  const ModelWeights otf =
      otf_load_model(dir, spec, bits, 0, spec.layers, opt, &stats);
  const ModelWeights direct = build_random_model(spec, bits, 77);

  // Identical generations prove identical weights.
  const auto prompts = make_prompts(spec, 3, 6, 3);
  EXPECT_EQ(reference_generate(otf, prompts, 5),
            reference_generate(direct, prompts, 5));
  EXPECT_GT(stats.total_loaded_bytes, 0u);
}

TEST(OtfQuantizer, BoundedPeakDram) {
  const ModelSpec spec = tiny_spec(8, 32);
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 4);
  const std::string dir = ::testing::TempDir() + "lpq_ckpt2";
  std::filesystem::create_directories(dir);
  const std::size_t full = write_random_checkpoint(dir, spec, 3);
  OtfOptions opt;
  opt.seed = 3;
  opt.prefetch_depth = 2;
  OtfLoadStats stats;
  (void)otf_load_model(dir, spec, bits, 0, spec.layers, opt, &stats);
  // Peak master-weight DRAM stays at ~(depth+1) of 8 layers (plus bias
  // arrays), far below the whole checkpoint.
  EXPECT_LE(stats.peak_master_bytes, full * 5 / 8);
  EXPECT_GE(stats.peak_master_bytes, full / spec.layers);
}

TEST(OtfQuantizer, PartialRangeLoadsOnlyRequestedLayers) {
  const ModelSpec spec = tiny_spec(6, 32);
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 8);
  const std::string dir = ::testing::TempDir() + "lpq_ckpt3";
  std::filesystem::create_directories(dir);
  write_random_checkpoint(dir, spec, 9);
  OtfLoadStats stats;
  const ModelWeights partial =
      otf_load_model(dir, spec, bits, 2, 4, {}, &stats);
  // Only layers [2, 4) hold weights.
  EXPECT_EQ(partial.layers[2].qkv.rows(), 3u * 32u);
  EXPECT_EQ(partial.layers[0].qkv.rows(), 0u);
  EXPECT_EQ(partial.layers[5].qkv.rows(), 0u);
}

ModelSpec tiny_llama(int layers = 5, std::int64_t hidden = 32) {
  ModelSpec m = tiny_spec(layers, hidden);
  m.name = "tiny-llama";
  m.family = "llama";
  m.ffn = 3 * hidden;  // non-4x, as in real LLaMA
  m.gated_mlp = true;
  m.use_rms_norm = true;
  m.use_rope = true;
  return m;
}

TEST(LlamaRuntime, ReferenceGenerationWorks) {
  const ModelSpec spec = tiny_llama();
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, bits, 31);
  const auto prompts = make_prompts(spec, 3, 8, 4);
  const auto g = reference_generate(mw, prompts, 6);
  ASSERT_EQ(g.size(), 3u);
  for (const auto& seq : g) {
    EXPECT_EQ(seq.size(), 6u);
    for (TokenId t : seq) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, spec.vocab);
    }
  }
  // Deterministic.
  EXPECT_EQ(reference_generate(mw, prompts, 6), g);
}

TEST(LlamaRuntime, RopeMakesOutputPositionDependent) {
  // Without RoPE (and without a position table) a 1-token prompt at
  // different positions would be indistinguishable; RoPE must break that.
  ModelSpec spec = tiny_llama();
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights with_rope = build_random_model(spec, bits, 77);
  spec.use_rope = false;
  const ModelWeights no_rope = build_random_model(spec, bits, 77);
  const auto prompts = make_prompts(spec, 2, 8, 9);
  const auto a = reference_generate(with_rope, prompts, 4);
  const auto b = reference_generate(no_rope, prompts, 4);
  // Same weights, different position handling: sequences should diverge.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= a[i] != b[i];
  EXPECT_TRUE(any_diff);
}

TEST(LlamaRuntime, PipelineEngineMatchesReference) {
  const ModelSpec spec = tiny_llama(6, 32);
  std::vector<int> bits(static_cast<std::size_t>(spec.layers), 16);
  for (int i = 0; i < spec.layers; ++i)
    bits[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 8 : 4;
  const ModelWeights mw = build_random_model(spec, bits, 555);
  const auto prompts = make_prompts(spec, 4, 10, 13);
  const auto ref = reference_generate(mw, prompts, 7);
  PipelineEngine engine(mw, {{0, 2}, {2, 4}, {4, 6}}, 2, 2);
  const auto got = engine.generate(prompts, 7);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t b = 0; b < ref.size(); ++b) EXPECT_EQ(got[b], ref[b]);
}

TEST(LlamaRuntime, OtfLoadMatchesDirectBuild) {
  const ModelSpec spec = tiny_llama();
  std::vector<int> bits = {16, 8, 4, 16, 8};
  const std::string dir = ::testing::TempDir() + "lpq_llama_ckpt";
  std::filesystem::create_directories(dir);
  write_random_checkpoint(dir, spec, 91);
  OtfOptions opt;
  opt.seed = 91;
  const ModelWeights otf = otf_load_model(dir, spec, bits, 0, spec.layers, opt);
  const ModelWeights direct = build_random_model(spec, bits, 91);
  const auto prompts = make_prompts(spec, 2, 6, 8);
  EXPECT_EQ(reference_generate(otf, prompts, 4),
            reference_generate(direct, prompts, 4));
}

TEST(OtfQuantizer, StageFailureRecovery) {
  // Paper Sec. 5: module-level shards "improve recovery speed from the
  // possible failure". Simulate a stage crash: rebuild only that stage's
  // layers from the checkpoint and verify generation is unaffected.
  const ModelSpec spec = tiny_spec(6, 32);
  std::vector<int> bits = {8, 8, 16, 16, 4, 4};
  const std::string dir = ::testing::TempDir() + "lpq_recover";
  std::filesystem::create_directories(dir);
  write_random_checkpoint(dir, spec, 55);
  OtfOptions opt;
  opt.seed = 55;
  ModelWeights weights = otf_load_model(dir, spec, bits, 0, spec.layers, opt);
  const auto prompts = make_prompts(spec, 4, 6, 2);
  const auto before = reference_generate(weights, prompts, 5);

  // "Crash" stage 1 (layers 2..4): wipe its weights, then recover via a
  // partial OTF reload of just that range.
  weights.layers[2] = LayerWeights{};
  weights.layers[3] = LayerWeights{};
  OtfLoadStats stats;
  const ModelWeights recovered =
      otf_load_model(dir, spec, bits, 2, 4, opt, &stats);
  weights.layers[2] = recovered.layers[2];
  weights.layers[3] = recovered.layers[3];
  EXPECT_EQ(reference_generate(weights, prompts, 5), before);
  // Recovery touched only the failed stage's shards (2 of 6 layers).
  OtfLoadStats full_stats;
  (void)otf_load_model(dir, spec, bits, 0, spec.layers, opt, &full_stats);
  EXPECT_NEAR(static_cast<double>(stats.total_loaded_bytes),
              static_cast<double>(full_stats.total_loaded_bytes) / 3.0,
              static_cast<double>(full_stats.total_loaded_bytes) * 0.05);
  PipelineEngine engine(weights, {{0, 2}, {2, 4}, {4, 6}}, 2, 2);
  EXPECT_EQ(engine.generate(prompts, 5), before);
}

// ---- Rotary embeddings: the precomputed inverse-frequency table must be
// bit-identical to the inline pow the seed evaluated per (token, head,
// pair) — the hot-path fix is a pure hoist, not a numeric change.
TEST(Rope, InvFreqTableBitIdenticalToInlinePow) {
  for (std::size_t dh : {std::size_t{8}, std::size_t{16}, std::size_t{64}}) {
    const std::vector<float> table = rope_inv_freqs(dh);
    ASSERT_EQ(table.size(), dh / 2);
    for (std::size_t i = 0; i < table.size(); ++i) {
      EXPECT_EQ(table[i], std::pow(10000.0f, -2.0f * static_cast<float>(i) /
                                                 static_cast<float>(dh)))
          << "dh=" << dh << " i=" << i;
    }
  }
}

TEST(Rope, ApplyMatchesLegacyInlineComputationExactly) {
  const std::size_t dh = 16;
  Rng rng(21);
  std::vector<float> v(dh), legacy(dh);
  for (std::size_t i = 0; i < dh; ++i) v[i] = static_cast<float>(rng.normal());
  for (std::size_t pos : {std::size_t{0}, std::size_t{1}, std::size_t{63}}) {
    legacy = v;
    // The seed's per-pair computation, verbatim.
    const std::size_t half = dh / 2;
    for (std::size_t i = 0; i < half; ++i) {
      const float freq = std::pow(
          10000.0f, -2.0f * static_cast<float>(i) / static_cast<float>(dh));
      const float angle = static_cast<float>(pos) * freq;
      const float c = std::cos(angle), sn = std::sin(angle);
      const float a = legacy[i], b = legacy[i + half];
      legacy[i] = a * c - b * sn;
      legacy[i + half] = a * sn + b * c;
    }
    std::vector<float> got = v;
    apply_rope(got.data(), dh, pos, rope_inv_freqs(dh).data());
    for (std::size_t i = 0; i < dh; ++i) EXPECT_EQ(got[i], legacy[i]) << i;
  }
}

// ---- Group-wise formats through the runtime: the packed bytes the model
// actually holds must equal the planner's formula (the satellite-1
// regression: the seed under-charged scale bytes), and the quantized
// pipeline must still generate deterministically.
TEST(Weights, GroupFormatBytesReconcileWithPlannerExactly) {
  const ModelSpec spec = tiny_spec(3, 32);
  for (QuantFormat format : kQuantFormats) {
    for (int bits : {3, 4, 8}) {
      const std::vector<int> all_bits(static_cast<std::size_t>(spec.layers),
                                      bits);
      const ModelWeights mw = build_random_model(spec, all_bits, 5, format);
      for (const LayerWeights& lw : mw.layers) {
        EXPECT_EQ(lw.format, format);
        const std::int64_t packed = static_cast<std::int64_t>(
            lw.qkv.packed_bytes() + lw.out.packed_bytes() +
            lw.fc1.packed_bytes() + lw.fc2.packed_bytes() +
            lw.fc3.packed_bytes());
        EXPECT_EQ(packed, layer_quantized_weight_bytes(spec, bits, format))
            << quant_format_name(format) << " bits=" << bits;
      }
    }
  }
}

TEST(Weights, GroupFormatServesSameMastersAndGenerates) {
  const ModelSpec spec = tiny_spec(4, 32);
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 4);
  const ModelWeights g32 =
      build_random_model(spec, bits, 9, QuantFormat::kGroup32);
  const auto prompts = make_prompts(spec, 2, 5, 17);
  // Deterministic: same build, same generation.
  const auto out1 = reference_generate(g32, prompts, 4);
  const auto out2 = reference_generate(
      build_random_model(spec, bits, 9, QuantFormat::kGroup32), prompts, 4);
  EXPECT_EQ(out1, out2);
  // Same masters requantized: at 16 bits the format is moot, so builds
  // under different formats are identical (the degrade-ladder property).
  const std::vector<int> fp(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights a = build_random_model(spec, fp, 9);
  const ModelWeights b =
      build_random_model(spec, fp, 9, QuantFormat::kGroup64);
  EXPECT_EQ(reference_generate(a, prompts, 4), reference_generate(b, prompts, 4));
  // And the threaded engine reproduces the group-format reference exactly.
  PipelineEngine engine(g32, {{0, 2}, {2, 4}}, 1, 1);
  EXPECT_EQ(engine.generate(prompts, 4), out1);
}

TEST(OtfQuantizer, GroupFormatMatchesDirectlyBuiltModel) {
  const ModelSpec spec = tiny_spec(3, 32);
  const std::vector<int> bits = {8, 4, 3};
  const std::string dir = ::testing::TempDir() + "lpq_ckpt_group";
  std::filesystem::create_directories(dir);
  write_random_checkpoint(dir, spec, 31);
  OtfOptions opt;
  opt.seed = 31;
  opt.format = QuantFormat::kGroup64;
  const ModelWeights otf = otf_load_model(dir, spec, bits, 0, spec.layers, opt);
  for (const LayerWeights& lw : otf.layers)
    EXPECT_EQ(lw.format, QuantFormat::kGroup64);
  const ModelWeights direct =
      build_random_model(spec, bits, 31, QuantFormat::kGroup64);
  const auto prompts = make_prompts(spec, 2, 5, 7);
  EXPECT_EQ(reference_generate(otf, prompts, 4),
            reference_generate(direct, prompts, 4));
}

}  // namespace
}  // namespace llmpq
