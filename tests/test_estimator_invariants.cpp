#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.hpp"
#include "cost/cost_provider.hpp"

namespace llmpq {
namespace {

/// Invariants of the planner-side estimate that the optimizers rely on.
/// Each is the monotonicity the heuristic's move generation assumes: if one
/// of these broke, bitwidth-transfer could walk uphill while believing it
/// improves.
class EstimatorInvariants : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto pc = paper_cluster(3);
    cluster_ = pc.cluster;
    model_ = &model_registry_get(pc.model_name);
    cost_ = std::make_unique<CostProvider>(*model_, cluster_,
                                           CostMode::kProfiled);
  }

  ExecutionPlan base_plan(int bits = 8) const {
    ExecutionPlan plan;
    plan.model_name = model_->name;
    plan.cluster_name = cluster_.name;
    plan.device_order = {0, 1, 2, 3};
    plan.boundaries = {0, 10, 22, 34, model_->layers};
    plan.layer_bits.assign(static_cast<std::size_t>(model_->layers), bits);
    plan.prefill_micro_batch = 4;
    plan.decode_micro_batch = 8;
    return plan;
  }

  ClusterSpec cluster_;
  const ModelSpec* model_ = nullptr;
  std::unique_ptr<CostProvider> cost_;
};

TEST_F(EstimatorInvariants, LoweringBitsShrinksStageMemory) {
  const PlanEstimate e8 = estimate_plan(*cost_, base_plan(8));
  const PlanEstimate e4 = estimate_plan(*cost_, base_plan(4));
  for (std::size_t p = 0; p < e8.stage_mem.size(); ++p)
    EXPECT_LT(e4.stage_mem[p].weights, e8.stage_mem[p].weights);
}

TEST_F(EstimatorInvariants, KvCacheIndependentOfWeightBits) {
  const PlanEstimate e8 = estimate_plan(*cost_, base_plan(8));
  const PlanEstimate e4 = estimate_plan(*cost_, base_plan(4));
  for (std::size_t p = 0; p < e8.stage_mem.size(); ++p)
    EXPECT_EQ(e4.stage_mem[p].kv_cache, e8.stage_mem[p].kv_cache);
}

TEST_F(EstimatorInvariants, MovingLayerShiftsStageTimes) {
  const ExecutionPlan a = base_plan();
  ExecutionPlan b = a;
  ++b.boundaries[1];  // stage 0 gains the first layer of stage 1
  const PlanEstimate ea = estimate_plan(*cost_, a);
  const PlanEstimate eb = estimate_plan(*cost_, b);
  EXPECT_GT(eb.stage_prefill_time[0], ea.stage_prefill_time[0]);
  EXPECT_LT(eb.stage_prefill_time[1], ea.stage_prefill_time[1]);
  EXPECT_GT(eb.stage_decode_time[0], ea.stage_decode_time[0]);
}

TEST_F(EstimatorInvariants, LongerGenerationGrowsDecodeShare) {
  ExecutionPlan longer = base_plan();
  longer.workload.gen_tokens = 200;
  const PlanEstimate e100 = estimate_plan(*cost_, base_plan());
  const PlanEstimate e200 = estimate_plan(*cost_, longer);
  EXPECT_GT(e200.decode_total, 1.8 * e100.decode_total);
  EXPECT_NEAR(e200.prefill_total, e100.prefill_total,
              0.05 * e100.prefill_total);
}

TEST_F(EstimatorInvariants, SmallerPrefillMicrobatchShrinksBubble) {
  ExecutionPlan small = base_plan();
  small.prefill_micro_batch = 1;
  ExecutionPlan big = base_plan();
  big.prefill_micro_batch = 32;
  const PlanEstimate es = estimate_plan(*cost_, small);
  const PlanEstimate eb = estimate_plan(*cost_, big);
  // With one giant micro-batch the pipeline serializes completely.
  EXPECT_LT(es.prefill_total, eb.prefill_total);
}

TEST_F(EstimatorInvariants, ObjectiveLinearInTheta) {
  const auto ind = compute_indicator(*model_, IndicatorKind::kVariance);
  const ExecutionPlan plan = base_plan(4);
  const PlanEstimate e1 = estimate_plan(*cost_, plan, &ind, 1.0);
  const PlanEstimate e10 = estimate_plan(*cost_, plan, &ind, 10.0);
  EXPECT_DOUBLE_EQ(e1.quality_penalty, e10.quality_penalty);
  EXPECT_NEAR(e10.objective - e10.e2e_latency,
              10.0 * (e1.objective - e1.e2e_latency), 1e-9);
}

TEST_F(EstimatorInvariants, ZeroGenerationClampsDecodeAndThroughput) {
  // Regression: decode_total used to scale by (gen_tokens - 1), so a
  // prefill-only workload produced a NEGATIVE decode time and e2e latency
  // (the simulator already guards this — PipelineSim.ZeroGeneration*).
  for (int gen : {0, 1}) {
    ExecutionPlan plan = base_plan();
    plan.workload.gen_tokens = gen;
    const PlanEstimate est = estimate_plan(*cost_, plan);
    ASSERT_TRUE(est.mem_feasible);
    EXPECT_EQ(est.decode_total, 0.0) << "gen_tokens=" << gen;
    EXPECT_GT(est.prefill_total, 0.0);
    EXPECT_DOUBLE_EQ(est.e2e_latency, est.prefill_total);
    EXPECT_GE(est.throughput_tokens_per_s, 0.0);
    EXPECT_TRUE(std::isfinite(est.throughput_tokens_per_s));
    EXPECT_GE(est.objective, 0.0);
  }
}

TEST_F(EstimatorInvariants, IncrementalScoresMatchFullEstimate) {
  // The bitwidth-transfer inner loop scores candidates with
  // IncrementalPlanEvaluator instead of a from-scratch estimate_plan; the
  // two must agree to floating-point summation order on every move kind.
  const auto ind = compute_indicator(*model_, IndicatorKind::kVariance);
  const double theta = 2.0;
  const ExecutionPlan plan = base_plan(8);
  const IncrementalPlanEvaluator eval(*cost_, &ind, theta, plan);

  const PlanEstimate base = estimate_plan(*cost_, plan, &ind, theta);
  ASSERT_TRUE(base.mem_feasible);
  ASSERT_TRUE(eval.base().feasible);
  EXPECT_NEAR(eval.base().objective, base.objective,
              1e-9 * base.objective);

  for (int layer : {0, 9, 10, 21, 33, model_->layers - 1}) {
    for (int bits : kBitCandidates) {
      ExecutionPlan cand = plan;
      cand.layer_bits[static_cast<std::size_t>(layer)] = bits;
      const PlanEstimate full = estimate_plan(*cost_, cand, &ind, theta);
      const auto s = eval.score_bit_change(layer, bits);
      EXPECT_EQ(s.feasible, full.mem_feasible)
          << "layer " << layer << " -> " << bits << " bits";
      if (full.mem_feasible)
        EXPECT_NEAR(s.objective, full.objective, 1e-9 * full.objective)
            << "layer " << layer << " -> " << bits << " bits";
    }
  }

  for (int p = 0; p + 1 < 4; ++p) {
    for (int delta : {-1, +1}) {
      for (int new_bits : {-1, 4}) {
        const auto s = eval.score_boundary_shift(p, delta, new_bits);
        ASSERT_TRUE(s.has_value());  // no stage is near-empty here
        ExecutionPlan cand = plan;
        const int moved = delta < 0
                              ? cand.boundaries[static_cast<std::size_t>(p) + 1] - 1
                              : cand.boundaries[static_cast<std::size_t>(p) + 1];
        cand.boundaries[static_cast<std::size_t>(p) + 1] += delta;
        if (new_bits > 0)
          cand.layer_bits[static_cast<std::size_t>(moved)] = new_bits;
        const PlanEstimate full = estimate_plan(*cost_, cand, &ind, theta);
        EXPECT_EQ(s->feasible, full.mem_feasible)
            << "boundary " << p << " delta " << delta;
        if (full.mem_feasible)
          EXPECT_NEAR(s->objective, full.objective, 1e-9 * full.objective)
              << "boundary " << p << " delta " << delta;
      }
    }
  }
}

TEST_F(EstimatorInvariants, DecodeRoundBoundIsMaxOfSumAndBottleneck) {
  // Reconstruct the refined decode bound from the estimate's pieces.
  const ExecutionPlan plan = base_plan();
  const PlanEstimate est = estimate_plan(*cost_, plan);
  double sum = 0.0, mx = 0.0;
  for (double t : est.stage_decode_time) {
    sum += t;
    mx = std::max(mx, t);
  }
  const double md = plan.decode_microbatch_count();
  const double per_round = std::max(sum, md * mx);
  EXPECT_NEAR(est.decode_total,
              (plan.workload.gen_tokens - 1) * per_round, 1e-9);
}

}  // namespace
}  // namespace llmpq
