#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/mpmc_queue.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace llmpq {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    rs.add(u);
  }
  EXPECT_NEAR(rs.mean(), 0.5, 0.01);
  EXPECT_NEAR(rs.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.02);
  EXPECT_NEAR(rs.variance(), 1.0, 0.03);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(3);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 10.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, OlsRecoversExactLinearModel) {
  // y = 3 + 2a - 0.5b, noiseless -> exact recovery.
  Rng rng(13);
  std::vector<std::vector<double>> feats;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(0, 10), b = rng.uniform(0, 10);
    feats.push_back({1.0, a, b});
    ys.push_back(3.0 + 2.0 * a - 0.5 * b);
  }
  const OlsFit fit = ols_fit(feats, ys);
  EXPECT_NEAR(fit.beta[0], 3.0, 1e-8);
  EXPECT_NEAR(fit.beta[1], 2.0, 1e-8);
  EXPECT_NEAR(fit.beta[2], -0.5, 1e-8);
  EXPECT_GT(fit.r2, 0.999999);
}

TEST(Stats, OlsSurvivesCollinearFeatures) {
  // Third feature duplicates the second: ridge fallback must not throw.
  std::vector<std::vector<double>> feats;
  std::vector<double> ys;
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    const double a = rng.uniform(0, 5);
    feats.push_back({1.0, a, a});
    ys.push_back(1.0 + 4.0 * a);
  }
  const OlsFit fit = ols_fit(feats, ys);
  EXPECT_NEAR(fit.beta[1] + fit.beta[2], 4.0, 1e-4);
}

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Matrix at = a.transposed();
  const Matrix aat = Matrix::multiply(a, at);
  EXPECT_DOUBLE_EQ(aat(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(aat(0, 1), 32.0);
  EXPECT_DOUBLE_EQ(aat(1, 1), 77.0);
}

TEST(Matrix, SolveSpdRoundTrips) {
  Matrix a(3, 3);
  // SPD matrix A = M^T M + I.
  a(0,0)=4; a(0,1)=1; a(0,2)=0;
  a(1,0)=1; a(1,1)=3; a(1,2)=1;
  a(2,0)=0; a(2,1)=1; a(2,2)=5;
  const std::vector<double> x_true = {1.0, -2.0, 0.5};
  std::vector<double> b(3, 0.0);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      b[static_cast<std::size_t>(i)] += a(static_cast<std::size_t>(i),
                                          static_cast<std::size_t>(j)) *
                                        x_true[static_cast<std::size_t>(j)];
  const auto x = Matrix::solve_spd(a, b);
  for (int i = 0; i < 3; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-10);
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.try_pop(), 3);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(MpmcQueue, CloseDrainsThenReturnsNull) {
  MpmcQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(MpmcQueue, ManyProducersManyConsumers) {
  MpmcQueue<int> q(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  for (int c = 0; c < 3; ++c)
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++received;
      }
    });
  for (int p = 0; p < kProducers; ++p)
    threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(MpmcQueue, BoundedCapacityBlocksUntilPopped) {
  MpmcQueue<int> q(1);
  q.push(1);
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.push(2);
    pushed = true;
  });
  EXPECT_EQ(q.pop(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), 2);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForStopsEarlyAfterException) {
  // Before the failed-flag short-circuit, a throwing body still ran every
  // remaining chunk to completion before rethrowing. The first index must
  // throw (chunk 0 is claimed first by construction), surviving workers
  // must bail out well short of the full range, and the ORIGINAL error —
  // not a later one — must surface.
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::atomic<std::size_t> executed{0};
  try {
    pool.parallel_for(n, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first failure");
      ++executed;
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first failure");
  }
  // Chunks are ~n / (workers * 4) indices; stopping at chunk granularity
  // leaves executed far below n. Allow generous slack for chunks already
  // in flight when the flag flips.
  EXPECT_LT(executed.load(), n / 2);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  // A silently dropped task would leave the returned future forever
  // pending and deadlock the caller — the pool must fail loudly instead.
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), Error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, InsideWorkerVisibleFromTasks) {
  ThreadPool pool(2);
  EXPECT_FALSE(ThreadPool::inside_worker());
  auto fut = pool.submit([] { return ThreadPool::inside_worker(); });
  EXPECT_TRUE(fut.get());
}

TEST(MpmcQueue, TracksHighWaterMark) {
  MpmcQueue<int> q(8);
  EXPECT_EQ(q.high_water(), 0u);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.high_water(), 3u);
  (void)q.pop();
  (void)q.pop();
  EXPECT_TRUE(q.push(4));
  // Draining does not lower the mark; it is the historical maximum.
  EXPECT_EQ(q.high_water(), 3u);
}

TEST(MpmcQueue, PushToClosedQueueFails) {
  MpmcQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(7));
}

TEST(MpmcQueue, PopForTimesOutDistinctFromClosed) {
  // pop_for returns nullopt on timeout AND on closed+drained; callers
  // (the engine's deadline poll) tell the two apart via closed().
  MpmcQueue<int> q;
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(5)), std::nullopt);
  EXPECT_FALSE(q.closed());
  q.push(9);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(5)), 9);
  q.close();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(5)), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(MpmcQueue, PopForDrainsRemainingItemsAfterClose) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(5)), 1);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(5)), 2);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(5)), std::nullopt);
}

TEST(MpmcQueue, CloseReleasesBlockedPush) {
  // A producer stuck on a full queue must not hang across close(): the
  // push wakes up and reports failure. This is the engine-shutdown path —
  // stage workers can be mid-push when the mailboxes close.
  MpmcQueue<int> q(1);
  q.push(1);
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = q.push(2); });
  // Give the producer time to block on the full queue, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_FALSE(push_result.load());
  EXPECT_EQ(q.pop(), 1);  // the accepted item still drains
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(MpmcQueue, ConcurrentCloseVersusPopLosesNoItems) {
  // Race close() against a pool of poppers: every pushed item is popped
  // exactly once, and every popper exits (no hang, no duplicate, no loss).
  constexpr int kItems = 200;
  MpmcQueue<int> q;
  for (int i = 0; i < kItems; ++i) q.push(i);
  std::atomic<int> popped{0};
  std::atomic<long> sum{0};
  std::vector<std::thread> poppers;
  for (int c = 0; c < 4; ++c)
    poppers.emplace_back([&] {
      while (auto v = q.pop()) {
        ++popped;
        sum += *v;
      }
    });
  q.close();  // races the poppers mid-drain
  for (auto& t : poppers) t.join();
  EXPECT_EQ(popped.load(), kItems);
  EXPECT_EQ(sum.load(), static_cast<long>(kItems) * (kItems - 1) / 2);
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::fmt(1.5)});
  t.add_row({"b", Table::fmt_ratio(2.875)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.88x"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsAritiyMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

}  // namespace
}  // namespace llmpq
