#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/rng.hpp"
#include "solver/dp_partition.hpp"
#include "solver/mckp.hpp"
#include "solver/milp.hpp"

namespace llmpq {
namespace {

TEST(Milp, SolvesKnapsack) {
  // max 8a + 11b + 6c + 4d  s.t. 5a + 7b + 4c + 3d <= 14, binary.
  // Optimum: a + c + d = 18? check combos: b+c+d = 11+6+4=21 w=14 feasible.
  LpProblem lp;
  const double values[] = {8, 11, 6, 4};
  const double weights[] = {5, 7, 4, 3};
  std::vector<std::pair<int, double>> row;
  MilpProblem p;
  for (int i = 0; i < 4; ++i) {
    const int v = p.lp.add_binary(-values[i]);
    p.integer_vars.push_back(v);
    row.push_back({v, weights[i]});
  }
  p.lp.add_row(std::move(row), LpProblem::RowType::kLe, 14.0);
  const MilpSolution s = solve_milp(p);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -21.0, 1e-6);
  EXPECT_NEAR(s.x[1] + s.x[2] + s.x[3], 3.0, 1e-6);
  // Exhausted search: the dual bound collapses to the incumbent, not the
  // (looser) root relaxation.
  EXPECT_NEAR(s.best_bound, s.objective, 1e-6);
}

TEST(Milp, TruncatedSearchReportsTightenedBound) {
  // 24-var knapsack, truncated after a few nodes: the bound must come from
  // the explored frontier — finite, at least the root relaxation, and
  // never above the incumbent.
  MilpProblem p;
  Rng rng(5);
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 24; ++i) {
    const int v = p.lp.add_binary(-rng.uniform(1.0, 2.0));
    p.integer_vars.push_back(v);
    row.push_back({v, rng.uniform(1.0, 3.0)});
  }
  p.lp.add_row(std::move(row), LpProblem::RowType::kLe, 10.0);
  MilpOptions opt;
  opt.max_nodes = 5;
  opt.warm_start = std::vector<double>(24, 0.0);
  const MilpSolution s = solve_milp(p, opt);
  ASSERT_EQ(s.status, MilpStatus::kFeasible);
  EXPECT_GT(s.best_bound, -1e29);  // not the -inf sentinel
  EXPECT_LE(s.best_bound, s.objective + 1e-9);

  // The same problem solved to optimality proves the truncated bound was
  // genuinely a lower bound on the optimum.
  const MilpSolution full = solve_milp(p);
  ASSERT_EQ(full.status, MilpStatus::kOptimal);
  EXPECT_LE(s.best_bound, full.objective + 1e-9);
  EXPECT_NEAR(full.best_bound, full.objective, 1e-6);
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 2x = 1 with x binary has no integral solution.
  MilpProblem p;
  const int x = p.lp.add_binary(1.0);
  p.integer_vars.push_back(x);
  p.lp.add_row({{x, 2.0}}, LpProblem::RowType::kEq, 1.0);
  EXPECT_EQ(solve_milp(p).status, MilpStatus::kInfeasible);
}

TEST(Milp, WarmStartPrunesToSameOptimum) {
  // Assignment-like problem; warm start with the known optimum.
  MilpProblem p;
  // 3 items, 2 slots, cost c[i][j]; each item in exactly one slot.
  const double cost[3][2] = {{1, 4}, {3, 2}, {5, 1}};
  int var[3][2];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) {
      var[i][j] = p.lp.add_binary(cost[i][j]);
      p.integer_vars.push_back(var[i][j]);
    }
  for (int i = 0; i < 3; ++i)
    p.lp.add_row({{var[i][0], 1.0}, {var[i][1], 1.0}},
                 LpProblem::RowType::kEq, 1.0);
  MilpOptions opt;
  std::vector<double> warm(6, 0.0);
  warm[0] = 1.0;  // item0 slot0
  warm[3] = 1.0;  // item1 slot1
  warm[5] = 1.0;  // item2 slot1
  opt.warm_start = warm;
  const MilpSolution s = solve_milp(p, opt);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0 + 2.0 + 1.0, 1e-6);
}

TEST(Milp, TimeLimitReturnsIncumbent) {
  MilpProblem p;
  Rng rng(5);
  // A 24-var knapsack with a tight budget; zero time limit forces the warm
  // start to be returned as-is.
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 24; ++i) {
    const int v = p.lp.add_binary(-rng.uniform(1.0, 2.0));
    p.integer_vars.push_back(v);
    row.push_back({v, rng.uniform(1.0, 3.0)});
  }
  p.lp.add_row(std::move(row), LpProblem::RowType::kLe, 10.0);
  MilpOptions opt;
  opt.time_limit_s = 0.0;
  opt.warm_start = std::vector<double>(24, 0.0);  // all-zero is feasible
  const MilpSolution s = solve_milp(p, opt);
  EXPECT_EQ(s.status, MilpStatus::kFeasible);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

TEST(DpPartition, MinMaxSplitsEvenCosts) {
  // 8 layers, 2 identical devices, unit cost per layer -> 4/4 split.
  const auto cost = [](int b, int e, int) {
    return static_cast<double>(e - b);
  };
  const PartitionResult r = partition_min_max(8, 2, cost);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 4.0);
  EXPECT_EQ(r.boundaries, (std::vector<int>{0, 4, 8}));
}

TEST(DpPartition, RespectsDeviceSpeedDifferences) {
  // Device 0 is 3x slower: it should receive ~1/4 of the layers.
  const auto cost = [](int b, int e, int dev) {
    return static_cast<double>(e - b) * (dev == 0 ? 3.0 : 1.0);
  };
  const PartitionResult r = partition_min_max(12, 2, cost);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.boundaries[1], 3);  // 3*3 == 9*1
}

TEST(DpPartition, InfeasibleStageCostPropagates) {
  const auto cost = [](int b, int e, int dev) {
    if (dev == 0 && e - b > 2) return std::numeric_limits<double>::infinity();
    return static_cast<double>(e - b);
  };
  const PartitionResult r = partition_min_max(10, 2, cost);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.boundaries[1], 2);
}

TEST(DpPartition, TotallyInfeasibleReturnsFalse) {
  const auto cost = [](int, int, int) {
    return std::numeric_limits<double>::infinity();
  };
  EXPECT_FALSE(partition_min_max(4, 2, cost).feasible);
}

TEST(DpPartition, MinSumMatchesGreedyOnSeparableCosts) {
  // With per-layer separable costs, min-sum equals assigning each layer to
  // where it is cheapest subject to contiguity; here device 1 cheaper for
  // everything, so it should take all layers.
  const auto cost = [](int b, int e, int dev) {
    return static_cast<double>(e - b) * (dev == 0 ? 2.0 : 1.0);
  };
  const PartitionResult r = partition_min_sum(6, 2, cost);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.objective, 6.0);
  EXPECT_EQ(r.boundaries[1], 0);
}

TEST(Milp, SharedIncumbentSeededAtOptimumIsNotPruned) {
  // Tie-safety of the cross-solver incumbent pool: pruning is *strictly*
  // greater-than, so seeding the shared value with the exact optimum must
  // not prune the subtree containing it — the solver still returns it.
  MilpProblem p;
  const int x0 = p.lp.add_binary(1.0);
  const int x1 = p.lp.add_binary(2.0);
  p.integer_vars = {x0, x1};
  p.lp.add_row({{x0, 1.0}, {x1, 1.0}}, LpProblem::RowType::kGe, 1.0);
  std::atomic<double> incumbent{1.0};  // the known optimum (x0 = 1)
  MilpOptions opt;
  opt.shared_incumbent = &incumbent;
  const MilpSolution s = solve_milp(p, opt);
  ASSERT_TRUE(s.status == MilpStatus::kOptimal ||
              s.status == MilpStatus::kFeasible);
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x0)], 1.0, 1e-6);
  EXPECT_LE(incumbent.load(), 1.0 + 1e-9);  // solver published its find
}

TEST(Milp, SharedIncumbentBelowOptimumPrunesSearch) {
  // A shared value strictly below anything achievable prunes every
  // subtree: another solver already holds a better plan, so this one
  // reports no solution instead of wasting its budget.
  MilpProblem p;
  const int x0 = p.lp.add_binary(1.0);
  const int x1 = p.lp.add_binary(2.0);
  p.integer_vars = {x0, x1};
  p.lp.add_row({{x0, 1.0}, {x1, 1.0}}, LpProblem::RowType::kGe, 1.0);
  std::atomic<double> incumbent{0.5};
  MilpOptions opt;
  opt.shared_incumbent = &incumbent;
  const MilpSolution s = solve_milp(p, opt);
  EXPECT_NE(s.status, MilpStatus::kOptimal);
  EXPECT_NE(s.status, MilpStatus::kFeasible);
  EXPECT_NEAR(incumbent.load(), 0.5, 1e-12);  // nothing better published
}

TEST(Mckp, PicksCheapestFeasibleCombination) {
  // Two items; capacity forces one small option.
  std::vector<std::vector<MckpOption>> items = {
      {{10, 5.0}, {4, 9.0}},
      {{10, 1.0}, {4, 8.0}},
  };
  const MckpResult r = solve_mckp(items, 14, 64);
  ASSERT_TRUE(r.feasible);
  // Best: item0 option1 (4, 9) + item1 option0 (10, 1) = 10.0 within 14.
  EXPECT_EQ(r.choice[0], 1);
  EXPECT_EQ(r.choice[1], 0);
  EXPECT_NEAR(r.total_value, 10.0, 1e-9);
}

TEST(Mckp, CumulativeRoundingKeepsNearCapacityFeasible) {
  // Regression: six mandatory options of weight 150 under capacity 1000
  // (total 900) are feasible, but per-option ceil-rounding at bucket_size
  // 100 used to charge each option 2 buckets — 12 > 10 — and reject the
  // assignment. The DP must bucketize the cumulative weight instead.
  std::vector<std::vector<MckpOption>> items(6, {{150, 1.0}});
  const MckpResult r = solve_mckp(items, 1000, 10);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.total_weight, 900);
  EXPECT_NEAR(r.total_value, 6.0, 1e-12);
}

TEST(Mckp, CoarseBucketsStillFindNearCapacityOptimum) {
  // The cheap options only fit because feasibility checks exact weights:
  // 3 x 330 = 990 <= 1000, yet each 330 straddles bucket_size 125.
  std::vector<std::vector<MckpOption>> items(
      3, {{330, 1.0}, {50, 10.0}});
  const MckpResult r = solve_mckp(items, 1000, 8);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.total_weight, 990);
  EXPECT_NEAR(r.total_value, 3.0, 1e-12);
}

TEST(Mckp, InfeasibleWhenEverythingTooHeavy) {
  std::vector<std::vector<MckpOption>> items = {{{100, 1.0}}};
  EXPECT_FALSE(solve_mckp(items, 10).feasible);
}

TEST(Mckp, NeverExceedsCapacity) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::vector<MckpOption>> items;
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 8));
    for (int i = 0; i < n; ++i) {
      std::vector<MckpOption> opts;
      for (int o = 0; o < 4; ++o)
        opts.push_back({rng.uniform_int(1, 50), rng.uniform(0.0, 3.0)});
      items.push_back(std::move(opts));
    }
    const std::int64_t cap = rng.uniform_int(20, 200);
    const MckpResult r = solve_mckp(items, cap, 128);
    if (r.feasible) EXPECT_LE(r.total_weight, cap);
  }
}

// MILP-vs-DP cross-check: contiguous partition with per-stage linear cost
// is expressible both ways; they must agree on the optimum.
TEST(MilpCrossCheck, MatchesDpOnContiguousPartition) {
  const int L = 6, N = 2;
  const double per_layer[2] = {2.0, 1.0};  // device costs
  // DP (min-sum with contiguity).
  const auto cost = [&](int b, int e, int dev) {
    return static_cast<double>(e - b) * per_layer[dev];
  };
  const PartitionResult dp = partition_min_sum(L, N, cost);

  // MILP: z[i][j] layer i on device j, contiguity via ordering constraints.
  MilpProblem p;
  int z[6][2];
  for (int i = 0; i < L; ++i)
    for (int j = 0; j < N; ++j) {
      z[i][j] = p.lp.add_binary(per_layer[j]);
      p.integer_vars.push_back(z[i][j]);
    }
  for (int i = 0; i < L; ++i)
    p.lp.add_row({{z[i][0], 1.0}, {z[i][1], 1.0}},
                 LpProblem::RowType::kEq, 1.0);
  for (int i = 1; i < L; ++i)
    p.lp.add_row({{z[i][0], 1.0}, {z[i - 1][1], 1.0}},
                 LpProblem::RowType::kLe, 1.0);
  const MilpSolution milp = solve_milp(p);
  ASSERT_EQ(milp.status, MilpStatus::kOptimal);
  EXPECT_NEAR(milp.objective, dp.objective, 1e-6);
}

}  // namespace
}  // namespace llmpq
