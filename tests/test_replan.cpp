#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/json_writer.hpp"
#include "cost/cost_provider.hpp"
#include "hw/cluster.hpp"
#include "model/model_spec.hpp"
#include "runtime/engine.hpp"
#include "runtime/transformer.hpp"
#include "serve/health.hpp"
#include "serve/migration.hpp"
#include "serve/online_engine.hpp"
#include "serve/replanner.hpp"
#include "sim/online_sim.hpp"

namespace llmpq {
namespace {

FaultRule rule(std::string site, FaultKind kind, double probability = 1.0,
               int max_fires = std::numeric_limits<int>::max(),
               double delay_ms = 0.0) {
  FaultRule r;
  r.site = std::move(site);
  r.kind = kind;
  r.probability = probability;
  r.max_fires = max_fires;
  r.delay_ms = delay_ms;
  return r;
}

struct ArmedPlan {
  explicit ArmedPlan(const FaultPlan& plan) {
    FaultInjector::instance().arm(plan);
  }
  ~ArmedPlan() { FaultInjector::instance().disarm(); }
};

ModelSpec tiny_spec() {
  ModelSpec m;
  m.name = "tiny-replan";
  m.family = "opt";
  m.hidden = 32;
  m.ffn = 128;
  m.heads = 4;
  m.layers = 6;
  m.vocab = 96;
  m.max_pos = 64;
  return m;
}

/// Two-stage plan over a homogeneous 2xT4 cluster: layers split 3/3, all
/// 8-bit, micro-batches 2/2 — the starting point every control-loop test
/// repairs from.
ExecutionPlan tiny_plan() {
  ExecutionPlan p;
  p.model_name = "tiny-replan";
  p.cluster_name = "t";
  p.workload.global_batch = 4;
  p.workload.prompt_len = 8;
  p.workload.gen_tokens = 8;
  p.device_order = {0, 1};
  p.boundaries = {0, 3, 6};
  p.layer_bits = std::vector<int>(6, 8);
  p.prefill_micro_batch = 2;
  p.decode_micro_batch = 2;
  return p;
}

std::vector<TokenId> make_prompt(Rng& rng, const ModelSpec& m, int len) {
  std::vector<TokenId> p;
  for (int t = 0; t < len; ++t)
    p.push_back(static_cast<TokenId>(rng.uniform_int(0, m.vocab - 1)));
  return p;
}

HealthSample sample(int seq, double dispatch_s,
                    std::vector<double> stage_busy = {}) {
  HealthSample s;
  s.seq = seq;
  s.dispatch_s = dispatch_s;
  s.stage_busy_s = std::move(stage_busy);
  return s;
}

// ---------------------------------------------------------------------------
// HealthMonitor: baseline learning, hysteresis, cooldown, attribution.
// ---------------------------------------------------------------------------

HealthMonitorOptions tight_health() {
  HealthMonitorOptions h;
  h.warmup = 3;
  h.straggler_ratio = 3.0;
  h.hysteresis = 2;
  h.cooldown = 4;
  return h;
}

TEST(HealthMonitorTest, WarmupLearnsBaselineThenHysteresisTrips) {
  HealthMonitor mon(tight_health());
  // Warmup: the max over the window becomes the baseline; nothing flags.
  EXPECT_TRUE(mon.observe(sample(0, 0.10)).healthy());
  EXPECT_TRUE(mon.observe(sample(1, 0.05)).healthy());
  EXPECT_TRUE(mon.observe(sample(2, 0.06)).healthy());
  EXPECT_DOUBLE_EQ(mon.snapshot().baseline_s, 0.10);
  // One slow sample is not enough (hysteresis 2)...
  EXPECT_TRUE(mon.observe(sample(3, 1.0, {0.2, 0.8})).healthy());
  // ...two consecutive ones are, and the verdict names the busy stage.
  const HealthVerdict v = mon.observe(sample(4, 1.0, {0.2, 0.8}));
  EXPECT_EQ(v.status, HealthStatus::kStraggler);
  EXPECT_EQ(v.at_seq, 4);
  EXPECT_EQ(v.bottleneck_stage, 1);
  EXPECT_NEAR(v.severity, 10.0, 1e-9);
}

TEST(HealthMonitorTest, InterruptedStreakDoesNotTrip) {
  HealthMonitor mon(tight_health());
  for (int i = 0; i < 3; ++i) mon.observe(sample(i, 0.1));
  // slow, fast, slow: the streak resets in the middle, so no verdict.
  EXPECT_TRUE(mon.observe(sample(3, 1.0)).healthy());
  EXPECT_TRUE(mon.observe(sample(4, 0.1)).healthy());
  EXPECT_TRUE(mon.observe(sample(5, 1.0)).healthy());
  EXPECT_EQ(mon.snapshot().verdicts, 0);
}

TEST(HealthMonitorTest, CooldownSilencesThenReTrips) {
  HealthMonitor mon(tight_health());
  for (int i = 0; i < 3; ++i) mon.observe(sample(i, 0.1));
  mon.observe(sample(3, 1.0, {1.0, 0.0}));
  EXPECT_FALSE(mon.observe(sample(4, 1.0, {1.0, 0.0})).healthy());
  // Cooldown 4: the next four samples stay quiet even though every one is
  // past the threshold.
  for (int i = 5; i < 9; ++i) {
    EXPECT_TRUE(mon.observe(sample(i, 1.0, {1.0, 0.0})).healthy())
        << "cooldown sample " << i;
  }
  // The baseline was deliberately NOT reset and the streak kept building
  // through the cooldown, so the persisting drag re-trips on the first
  // sample after it drains — this is what drives iterative repairs in the
  // control loop.
  const HealthVerdict again = mon.observe(sample(9, 1.0, {1.0, 0.0}));
  EXPECT_EQ(again.status, HealthStatus::kStraggler);
  EXPECT_EQ(mon.snapshot().verdicts, 2);
}

TEST(HealthMonitorTest, BottleneckTieBreaksToLowestStage) {
  HealthMonitor mon(tight_health());
  for (int i = 0; i < 3; ++i) mon.observe(sample(i, 0.1));
  mon.observe(sample(3, 1.0, {0.5, 0.5}));
  const HealthVerdict v = mon.observe(sample(4, 1.0, {0.5, 0.5}));
  EXPECT_EQ(v.status, HealthStatus::kStraggler);
  EXPECT_EQ(v.bottleneck_stage, 0);
}

TEST(HealthMonitorTest, MemFaultDeltaTripsMemoryPressureOnce) {
  HealthMonitorOptions h = tight_health();
  h.mem_fault_threshold = 2;
  HealthMonitor mon(h);
  for (int i = 0; i < 3; ++i) mon.observe(sample(i, 0.1));
  HealthSample s = sample(3, 0.1);
  s.mem_faults = 2;
  const HealthVerdict v = mon.observe(s);
  EXPECT_EQ(v.status, HealthStatus::kMemoryPressure);
  // The mark advances on the verdict: the same cumulative count must not
  // re-trip after the cooldown drains.
  for (int i = 4; i < 12; ++i) {
    HealthSample again = sample(i, 0.1);
    again.mem_faults = 2;
    EXPECT_TRUE(mon.observe(again).healthy()) << "sample " << i;
  }
}

TEST(HealthMonitorTest, QueueOverloadVerdictRequiresOptIn) {
  HealthMonitorOptions h = tight_health();
  HealthMonitor off(h);
  for (int i = 0; i < 3; ++i) off.observe(sample(i, 0.1));
  HealthSample deep = sample(3, 0.1);
  deep.queue_depth = 100;
  EXPECT_TRUE(off.observe(deep).healthy());  // disabled by default

  h.queue_overload_depth = 8;
  HealthMonitor on(h);
  for (int i = 0; i < 3; ++i) on.observe(sample(i, 0.1));
  const HealthVerdict v = on.observe(deep);
  EXPECT_EQ(v.status, HealthStatus::kOverload);
  EXPECT_NEAR(v.severity, 100.0 / 8.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Replanner: deterministic single-move repairs.
// ---------------------------------------------------------------------------

struct ReplanSetup {
  ModelSpec spec = tiny_spec();
  ClusterSpec cluster = make_cluster("t", {{"T4-16G", 2}});
  CostProvider cost{spec, cluster, CostMode::kProfiled};
  ExecutionPlan plan = tiny_plan();
  Replanner replanner{cost, nullptr, 0.0};
};

HealthVerdict straggler(int stage, int at_seq = 9) {
  HealthVerdict v;
  v.status = HealthStatus::kStraggler;
  v.bottleneck_stage = stage;
  v.severity = 10.0;
  v.at_seq = at_seq;
  return v;
}

TEST(ReplannerTest, HealthyVerdictProposesNothing) {
  ReplanSetup s;
  EXPECT_EQ(s.replanner.propose(s.plan, HealthVerdict{}).kind,
            PlanDeltaKind::kNone);
}

TEST(ReplannerTest, StragglerMigratesFirstLayerOffLastStage) {
  ReplanSetup s;
  const PlanDelta d = s.replanner.propose(s.plan, straggler(1));
  EXPECT_EQ(d.kind, PlanDeltaKind::kMigrateLayer);
  EXPECT_EQ(d.layer, 3);  // stage 1's first layer
  EXPECT_EQ(d.from_stage, 1);
  EXPECT_EQ(d.to_stage, 0);  // the only adjacent stage
  const ExecutionPlan next = Replanner::apply(s.plan, d);
  EXPECT_EQ(next.boundaries, (std::vector<int>{0, 4, 6}));
  EXPECT_EQ(next.stage_size(1), 2);
}

TEST(ReplannerTest, StragglerOnFirstStageMovesItsLastLayerForward) {
  ReplanSetup s;
  const PlanDelta d = s.replanner.propose(s.plan, straggler(0));
  EXPECT_EQ(d.kind, PlanDeltaKind::kMigrateLayer);
  EXPECT_EQ(d.layer, 2);  // stage 0's last layer
  EXPECT_EQ(d.from_stage, 0);
  EXPECT_EQ(d.to_stage, 1);
  EXPECT_EQ(Replanner::apply(s.plan, d).boundaries,
            (std::vector<int>{0, 2, 6}));
}

TEST(ReplannerTest, SingleLayerStageHemmedInReturnsNone) {
  ReplanSetup s;
  s.plan.boundaries = {0, 5, 6};  // stage 1 cannot shrink without emptying
  const PlanDelta d = s.replanner.propose(s.plan, straggler(1));
  EXPECT_EQ(d.kind, PlanDeltaKind::kNone);
}

TEST(ReplannerTest, MemoryPressureLowersOneBottleneckLayer) {
  ReplanSetup s;
  HealthVerdict v;
  v.status = HealthStatus::kMemoryPressure;
  v.bottleneck_stage = 1;
  const PlanDelta d = s.replanner.propose(s.plan, v);
  ASSERT_EQ(d.kind, PlanDeltaKind::kBitChange);
  EXPECT_GE(d.layer, 3);  // scoped to the bottleneck stage
  EXPECT_LT(d.layer, 6);
  EXPECT_EQ(d.new_bits, 4);  // next candidate below 8
  const ExecutionPlan next = Replanner::apply(s.plan, d);
  EXPECT_EQ(next.layer_bits[static_cast<std::size_t>(d.layer)], 4);
}

TEST(ReplannerTest, OverloadHalvesMicroBatchesUntilFloor) {
  ReplanSetup s;
  HealthVerdict v;
  v.status = HealthStatus::kOverload;
  const PlanDelta d = s.replanner.propose(s.plan, v);
  ASSERT_EQ(d.kind, PlanDeltaKind::kMicroBatch);
  EXPECT_EQ(d.prefill_micro_batch, 1);
  EXPECT_EQ(d.decode_micro_batch, 1);
  const ExecutionPlan next = Replanner::apply(s.plan, d);
  EXPECT_EQ(next.prefill_micro_batch, 1);
  // Already at the smallest quanta: no further repair.
  EXPECT_EQ(s.replanner.propose(next, v).kind, PlanDeltaKind::kNone);
}

TEST(ReplannerTest, ApplyRejectsNonAdjacentMigration) {
  ReplanSetup s;
  PlanDelta d;
  d.kind = PlanDeltaKind::kMigrateLayer;
  d.layer = 0;
  d.from_stage = 0;
  d.to_stage = 0;  // not adjacent
  EXPECT_THROW(Replanner::apply(s.plan, d), Error);
}

// ---------------------------------------------------------------------------
// MigrationController: deltas become live engines.
// ---------------------------------------------------------------------------

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : spec_(tiny_spec()),
        weights_(build_random_model(
            spec_, std::vector<int>(static_cast<std::size_t>(spec_.layers), 8),
            2024)),
        engine_(weights_, {{0, 3}, {3, 6}}, 2, 2) {
    Rng rng(3);
    for (int i = 0; i < 4; ++i) prompts_.push_back(make_prompt(rng, spec_, 8));
    reference_ = reference_generate(weights_, prompts_, 4);
  }
  ModelSpec spec_;
  ModelWeights weights_;
  PipelineEngine engine_;
  std::vector<std::vector<TokenId>> prompts_;
  std::vector<std::vector<TokenId>> reference_;
};

TEST_F(MigrationTest, NoneDeltaReturnsNullAndKeepsPlan) {
  MigrationController ctl(weights_, tiny_plan(), 2024);
  EXPECT_EQ(ctl.apply(PlanDelta{}), nullptr);
  EXPECT_EQ(ctl.migrations(), 0);
  EXPECT_EQ(ctl.plan().boundaries, (std::vector<int>{0, 3, 6}));
}

TEST_F(MigrationTest, MigrateLayerSharesWeightsAndStaysBitExact) {
  MigrationController ctl(weights_, tiny_plan(), 2024);
  PlanDelta d;
  d.kind = PlanDeltaKind::kMigrateLayer;
  d.layer = 3;
  d.from_stage = 1;
  d.to_stage = 0;
  PipelineEngine* next = ctl.apply(d);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(ctl.migrations(), 1);
  EXPECT_EQ(ctl.plan().boundaries, (std::vector<int>{0, 4, 6}));
  // The repartitioned engine runs the same tensors: greedy output is
  // bit-identical to the pre-migration reference.
  EXPECT_EQ(next->generate(prompts_, 4), reference_);
}

TEST_F(MigrationTest, BitChangeRebuildsFromTheSameMasterSeed) {
  MigrationController ctl(weights_, tiny_plan(), 2024);
  PlanDelta d;
  d.kind = PlanDeltaKind::kBitChange;
  d.layer = 0;
  d.new_bits = 4;
  PipelineEngine* next = ctl.apply(d);
  ASSERT_NE(next, nullptr);
  // Same model identity, lower precision: matches a direct build of the
  // new bit vector from the same seed (NOT the old reference — precision
  // changed by design).
  std::vector<int> bits(static_cast<std::size_t>(spec_.layers), 8);
  bits[0] = 4;
  const ModelWeights direct = build_random_model(spec_, bits, 2024);
  EXPECT_EQ(next->generate(prompts_, 4),
            reference_generate(direct, prompts_, 4));
}

TEST_F(MigrationTest, HookProposesAppliesAndAdvancesThePlan) {
  ReplanSetup s;
  MigrationController ctl(weights_, s.plan, 2024);
  auto hook = ctl.hook(s.replanner);
  const ReplanOutcome out = hook(straggler(1));
  EXPECT_EQ(out.delta.kind, PlanDeltaKind::kMigrateLayer);
  ASSERT_NE(out.engine, nullptr);
  EXPECT_EQ(ctl.plan().boundaries, (std::vector<int>{0, 4, 6}));
  // A healthy verdict through the hook is a no-op.
  const ReplanOutcome idle = hook(HealthVerdict{});
  EXPECT_EQ(idle.engine, nullptr);
  EXPECT_EQ(idle.delta.kind, PlanDeltaKind::kNone);
}

// ---------------------------------------------------------------------------
// Replacement-engine validation (degrade and replan both gate on it).
// ---------------------------------------------------------------------------

TEST_F(MigrationTest, ValidateReplacementEngineNamesTheMismatch) {
  ModelSpec other = spec_;
  other.vocab = 80;
  const ModelWeights other_weights = build_random_model(
      other, std::vector<int>(static_cast<std::size_t>(other.layers), 8),
      2024);
  PipelineEngine wrong_vocab(other_weights, {{0, 3}, {3, 6}}, 1, 1);
  const std::string err = validate_replacement_engine(engine_, wrong_vocab);
  EXPECT_NE(err.find("vocab"), std::string::npos) << err;

  ModelSpec shallow = spec_;
  shallow.layers = 4;
  const ModelWeights shallow_weights = build_random_model(
      shallow, std::vector<int>(4, 8), 2024);
  PipelineEngine wrong_layers(shallow_weights, {{0, 2}, {2, 4}}, 1, 1);
  EXPECT_NE(validate_replacement_engine(engine_, wrong_layers).find("layer"),
            std::string::npos);

  PipelineEngine ok(weights_, {{0, 4}, {4, 6}}, 1, 1);
  EXPECT_TRUE(validate_replacement_engine(engine_, ok).empty());
}

TEST_F(MigrationTest, IncompatibleDegradeEngineIsATerminalServingError) {
  // The degrade hook hands back an engine for a different model: the loop
  // must surface a clear error instead of silently swapping it in.
  ModelSpec other = spec_;
  other.vocab = 80;
  const ModelWeights other_weights = build_random_model(
      other, std::vector<int>(static_cast<std::size_t>(other.layers), 8),
      2024);
  PipelineEngine wrong(other_weights, {{0, 3}, {3, 6}}, 1, 1);

  FaultPlan plan;
  plan.rules.push_back(rule("engine.kv_alloc", FaultKind::kAllocFail, 1.0, 2));
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.max_retries = 4;
  opt.scheduler.retry_backoff_s = 0.001;
  opt.degrade_after_mem_faults = 2;
  opt.degrade = [&](int) -> PipelineEngine* { return &wrong; };

  std::vector<OnlineTraceRequest> trace(3);
  Rng rng(11);
  for (auto& t : trace) {
    t.prompt = make_prompt(rng, spec_, 8);
    t.gen_tokens = 3;
  }
  ArmedPlan armed(plan);
  try {
    serve_trace(engine_, trace, opt);
    FAIL() << "expected Error for the incompatible degrade engine";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("incompatible"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("vocab"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Elastic migration end to end: a sustained straggler triggers live
// re-planning, throughput recovers, and every request stays exact.
// ---------------------------------------------------------------------------

class ControlLoopTest : public MigrationTest {
 protected:
  std::vector<OnlineTraceRequest> burst_trace(int n, int gen) {
    std::vector<OnlineTraceRequest> trace;
    for (int i = 0; i < n; ++i) {
      OnlineTraceRequest t;
      t.prompt = prompts_[static_cast<std::size_t>(i) % prompts_.size()];
      t.gen_tokens = gen;
      trace.push_back(std::move(t));
    }
    return trace;
  }
};

TEST_F(ControlLoopTest, StragglerMigrationRecoversThroughputBitExact) {
  // A sustained slowdown on stage 1's workers (per micro-batch per layer,
  // so the drag scales with the layers the stage still owns). The control
  // loop should migrate layers off stage 1, shrinking the drag; the
  // no-replan run keeps paying it in full.
  FaultPlan plan;
  FaultRule slow = rule("stage.1.layer", FaultKind::kSlow, 1.0,
                        std::numeric_limits<int>::max(), 25.0);
  slow.after = 40;  // the baseline window must stay clean
  plan.rules.push_back(slow);

  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  const int n = 4, gen = 16;
  const std::vector<std::vector<TokenId>> expected =
      reference_generate(weights_, prompts_, gen);

  OnlineReport degraded;
  {
    ArmedPlan armed(plan);
    degraded = serve_trace(engine_, burst_trace(n, gen), opt);
  }
  EXPECT_EQ(degraded.completed, n);
  EXPECT_EQ(degraded.migrations, 0);

  ReplanSetup s;
  MigrationController ctl(weights_, s.plan, 2024);
  opt.health.warmup = 4;
  opt.health.hysteresis = 2;
  opt.health.cooldown = 3;  // re-trip quickly so several repairs land
  opt.replan = ctl.hook(s.replanner);
  OnlineReport migrated;
  {
    ArmedPlan armed(plan);
    migrated = serve_trace(engine_, burst_trace(n, gen), opt);
  }

  // The loop detected the straggler and migrated at least one layer off
  // stage 1 (all repairs here are bit-preserving boundary moves).
  ASSERT_GE(migrated.migrations, 1);
  ASSERT_FALSE(migrated.replans.empty());
  for (const ReplanEvent& ev : migrated.replans) {
    EXPECT_EQ(ev.status, HealthStatus::kStraggler);
    EXPECT_EQ(ev.bottleneck_stage, 1);
    if (ev.applied) {
      EXPECT_EQ(ev.delta.kind, PlanDeltaKind::kMigrateLayer);
      EXPECT_EQ(ev.delta.from_stage, 1);
    }
  }
  EXPECT_LT(ctl.plan().stage_size(1), 3);

  // Conservation: every request finished exactly once, completed.
  EXPECT_EQ(migrated.completed, n);
  std::set<int> seen;
  for (const RequestStats& r : migrated.requests)
    EXPECT_TRUE(seen.insert(r.id).second);
  EXPECT_EQ(static_cast<int>(seen.size()), n);

  // Bit-exactness across the live swaps: each request's output equals its
  // unmigrated greedy continuation.
  ASSERT_EQ(migrated.generated.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(migrated.generated[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i) % expected.size()])
        << "request " << i;

  // Recovery: shedding straggler layers must beat tolerating them.
  EXPECT_GT(migrated.throughput_tokens_per_s,
            degraded.throughput_tokens_per_s);
}

// ---------------------------------------------------------------------------
// Sim-vs-runtime parity: the re-plan decision log joins the dispatch log.
// ---------------------------------------------------------------------------

struct ParityTrace {
  int requests = 3;
  int gen = 20;
  int after = 8;        ///< clean evaluations before the slow window
  double delay_ms = 250.0;
};

TEST_F(ControlLoopTest, ReplanEventsMatchAcrossBackendsOnStragglerTraces) {
  const ParityTrace traces[] = {{3, 20, 8, 250.0}, {4, 24, 12, 300.0}};
  for (const ParityTrace& tc : traces) {
    SCOPED_TRACE("after=" + std::to_string(tc.after));
    // The serving-layer site fires once per dispatch per stage in BOTH
    // back-ends, so the slow window opens at the same decision seq.
    FaultPlan plan;
    FaultRule slow = rule("serve.stage.1", FaultKind::kSlow, 1.0,
                          std::numeric_limits<int>::max(), tc.delay_ms);
    slow.after = tc.after;
    plan.rules.push_back(slow);

    ReplanSetup s;
    OnlineEngineOptions opt;
    opt.scheduler.policy = SchedulerPolicy::kIterationLevel;

    MigrationController ctl(weights_, s.plan, 2024);
    opt.replan = ctl.hook(s.replanner);
    OnlineReport runtime;
    {
      ArmedPlan armed(plan);
      runtime = serve_trace(engine_, burst_trace(tc.requests, tc.gen), opt);
    }
    EXPECT_EQ(runtime.completed, tc.requests);

    std::vector<OnlineRequest> reqs(
        static_cast<std::size_t>(tc.requests));
    for (auto& r : reqs) {
      r.arrival_s = 0.0;
      r.prompt_len = 8;
      r.gen_tokens = tc.gen;
    }
    OnlineReplanOptions ropt;
    ropt.health = opt.health;
    ropt.cost = &s.cost;
    const OnlineSimResult sim = simulate_online(
        spec_, s.cluster, s.plan, reqs, opt.scheduler, plan, &ropt);
    ASSERT_TRUE(sim.ok) << sim.error;

    // Dispatch-decision parity (the pre-existing key) still holds with
    // the control loop in the picture...
    ASSERT_EQ(runtime.decisions.size(), sim.decisions.size());
    // ...and the new re-plan events extend it: same verdicts at the same
    // seqs proposing the same moves, on both clocks.
    ASSERT_GE(runtime.replans.size(), 2u);
    ASSERT_EQ(runtime.replans.size(), sim.replans.size());
    for (std::size_t i = 0; i < runtime.replans.size(); ++i) {
      EXPECT_TRUE(runtime.replans[i].same_decision(sim.replans[i]))
          << "event " << i << ": runtime seq " << runtime.replans[i].at_seq
          << " (" << runtime.replans[i].delta.describe() << ") vs sim seq "
          << sim.replans[i].at_seq << " ("
          << sim.replans[i].delta.describe() << ")";
    }
    EXPECT_EQ(runtime.migrations, sim.migrations);
    EXPECT_EQ(ctl.plan().boundaries, sim.final_plan.boundaries);
  }
}

TEST(SimControlLoop, ReplanningRecoversVirtualThroughputDeterministically) {
  // Pure-sim acceptance check on the virtual clock: a sustained straggler
  // with the control loop on beats the same trace with it off, and the
  // whole run (including the decision log) is bit-identical on replay.
  ModelSpec spec = tiny_spec();
  ClusterSpec cluster = make_cluster("t", {{"T4-16G", 2}});
  CostProvider cost(spec, cluster, CostMode::kProfiled);
  const ExecutionPlan plan = tiny_plan();

  std::vector<OnlineRequest> reqs(4);
  for (auto& r : reqs) {
    r.arrival_s = 0.0;
    r.prompt_len = 8;
    r.gen_tokens = 24;
  }
  OnlineSimOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;

  FaultPlan faults;
  FaultRule slow = rule("serve.stage.1", FaultKind::kSlow, 1.0,
                        std::numeric_limits<int>::max(), 200.0);
  slow.after = 8;
  faults.rules.push_back(slow);

  const OnlineSimResult tolerate =
      simulate_online(spec, cluster, plan, reqs, opt, faults);
  ASSERT_TRUE(tolerate.ok) << tolerate.error;
  EXPECT_EQ(tolerate.migrations, 0);

  OnlineReplanOptions ropt;
  ropt.cost = &cost;
  ropt.health.cooldown = 3;
  const OnlineSimResult replanned =
      simulate_online(spec, cluster, plan, reqs, opt, faults, &ropt);
  ASSERT_TRUE(replanned.ok) << replanned.error;
  EXPECT_GE(replanned.migrations, 1);
  EXPECT_GT(replanned.throughput_tokens_per_s,
            tolerate.throughput_tokens_per_s);
  EXPECT_EQ(replanned.completed + replanned.timed_out + replanned.rejected +
                replanned.failed,
            4);

  const OnlineSimResult again =
      simulate_online(spec, cluster, plan, reqs, opt, faults, &ropt);
  ASSERT_EQ(again.replans.size(), replanned.replans.size());
  for (std::size_t i = 0; i < again.replans.size(); ++i)
    EXPECT_TRUE(again.replans[i].same_decision(replanned.replans[i]));
  EXPECT_DOUBLE_EQ(again.makespan_s, replanned.makespan_s);
}

// ---------------------------------------------------------------------------
// Metrics export: periodic llmpq-metrics/v1 snapshots from the live loop.
// ---------------------------------------------------------------------------

TEST_F(ControlLoopTest, MetricsSnapshotRoundTripsThroughTheSchema) {
  const std::string path = "replan_metrics_snapshot.json";
  std::remove(path.c_str());
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.metrics_out = path;
  opt.metrics_interval_s = 0.0;  // snapshot after every dispatch
  const OnlineReport rep = serve_trace(engine_, burst_trace(3, 4), opt);
  EXPECT_EQ(rep.completed, 3);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "metrics file missing: " << path;
  std::ostringstream text;
  text << in.rdbuf();
  const JsonValue doc = parse_json(text.str());
  EXPECT_EQ(doc.at("schema").string, "llmpq-metrics/v1");
  EXPECT_GE(doc.at("values").at("serve.health.samples").number, 1.0);
  EXPECT_DOUBLE_EQ(doc.at("values").at("serve.health.migrations").number,
                   0.0);
  // The live engine's stats ride along for dashboards.
  EXPECT_GE(doc.at("engines").at("serve.engine").at("generate_calls").number,
            0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace llmpq
