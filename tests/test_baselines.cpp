#include <gtest/gtest.h>

#include "common/error.hpp"
#include "baselines/baselines.hpp"
#include "core/estimator.hpp"
#include "quant/quality.hpp"
#include "sim/pipeline_sim.hpp"

namespace llmpq {
namespace {

TEST(Uniform, PicksHighestBitsThatFit) {
  // A100-40G + OPT-13b: FP16 weights ~26 GB + KV fits -> expect 16 bits.
  {
    const auto [cluster, model_name] = paper_cluster(2);
    CostProvider cost(model_registry_get(model_name), cluster,
                      CostMode::kProfiled);
    const auto bits = uniform_bits_that_fit(cost);
    ASSERT_TRUE(bits.has_value());
    EXPECT_GE(*bits, 8);
  }
  // 3x P100 + V100 + OPT-30b: even split overflows the 12 GB P100s until
  // deep quantization; the paper's Table 4 even marks Uniform as OOM here.
  {
    const auto [cluster, model_name] = paper_cluster(4);
    CostProvider cost(model_registry_get(model_name), cluster,
                      CostMode::kProfiled);
    const auto bits = uniform_bits_that_fit(cost);
    if (bits.has_value()) EXPECT_LE(*bits, 4);
  }
}

TEST(Uniform, PlanIsValidAndSimulates) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const ExecutionPlan plan = uniform_plan(cost);
  plan.validate(m.layers, cluster.num_devices());
  // Even split.
  for (int p = 0; p + 1 < plan.num_stages(); ++p)
    EXPECT_EQ(plan.stage_size(p), (m.layers + 3) / 4);
  const SimResult sim = simulate_plan(m, cluster, plan);
  EXPECT_TRUE(sim.ok) << sim.error;
}

TEST(PipeEdge, BalancesPrefillAcrossHeterogeneousDevices) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const ExecutionPlan plan = pipeedge_plan(cost);
  plan.validate(m.layers, cluster.num_devices());
  // Uniform precision everywhere.
  for (int b : plan.layer_bits) EXPECT_EQ(b, plan.layer_bits.front());
  const SimResult sim = simulate_plan(m, cluster, plan);
  ASSERT_TRUE(sim.ok) << sim.error;
  // Heterogeneity-aware: the V100 stage must hold more layers than any T4
  // stage (it is both faster and larger).
  int v100_pos = -1;
  for (int p = 0; p < plan.num_stages(); ++p)
    if (cluster.devices[static_cast<std::size_t>(
            plan.device_order[static_cast<std::size_t>(p)])].gpu_name ==
        "V100-32G")
      v100_pos = p;
  ASSERT_GE(v100_pos, 0);
  for (int p = 0; p < plan.num_stages(); ++p)
    if (p != v100_pos) EXPECT_GE(plan.stage_size(v100_pos), plan.stage_size(p));
}

TEST(PipeEdge, BeatsUniformOnHeteroCluster) {
  const auto [cluster, model_name] = paper_cluster(4);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const ExecutionPlan pe = pipeedge_plan(cost);
  const SimResult pe_sim = simulate_plan(m, cluster, pe);
  ASSERT_TRUE(pe_sim.ok) << pe_sim.error;
  try {
    const ExecutionPlan uni = uniform_plan(cost);
    const SimResult uni_sim = simulate_plan(m, cluster, uni);
    if (uni_sim.ok)
      EXPECT_GT(pe_sim.throughput_tokens_per_s,
                uni_sim.throughput_tokens_per_s);
  } catch (const InfeasibleError&) {
    SUCCEED();  // Uniform OOMs on cluster 4, matching the paper's dagger.
  }
}

TEST(FlexGen, Int8FasterThanFp16WhenSpilling) {
  const auto [cluster, model_name] = paper_cluster(9);
  CostProvider cost(model_registry_get(model_name), cluster,
                    CostMode::kProfiled);
  const OffloadResult fp16 = flexgen_run(cost, 16);
  const OffloadResult int8 = flexgen_run(cost, 8);
  ASSERT_TRUE(fp16.ok && int8.ok);
  EXPECT_GT(int8.throughput_tokens_per_s, fp16.throughput_tokens_per_s);
}

TEST(Baselines, QualityOrderingMatchesBits) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const ExecutionPlan pe = pipeedge_plan(cost);
  const double ppl = plan_ppl(m, pe.layer_bits);
  EXPECT_GE(ppl, m.ppl_fp16 - 0.1);
  EXPECT_LE(ppl, uniform_ppl(m, 3) + 1e-9);
}

}  // namespace
}  // namespace llmpq
