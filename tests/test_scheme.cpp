#include <gtest/gtest.h>

#include "cost/ground_truth.hpp"
#include "quant/quality.hpp"
#include "quant/scheme.hpp"

namespace llmpq {
namespace {

TEST(QuantScheme, TraitOrderings) {
  for (int bits : {3, 4}) {
    // AWQ kernels fastest, SpQR slowest.
    EXPECT_GT(scheme_kernel_speedup(QuantScheme::kAwq, bits),
              scheme_kernel_speedup(QuantScheme::kGptq, bits));
    EXPECT_LT(scheme_kernel_speedup(QuantScheme::kSpqr, bits),
              scheme_kernel_speedup(QuantScheme::kGptq, bits));
    // SpQR best quality, then AWQ, then GPTQ.
    EXPECT_LT(scheme_quality_factor(QuantScheme::kSpqr, bits),
              scheme_quality_factor(QuantScheme::kAwq, bits));
    EXPECT_LT(scheme_quality_factor(QuantScheme::kAwq, bits),
              scheme_quality_factor(QuantScheme::kGptq, bits));
    // Only SpQR pays a memory surcharge.
    EXPECT_GT(scheme_memory_factor(QuantScheme::kSpqr, bits), 1.0);
    EXPECT_EQ(scheme_memory_factor(QuantScheme::kAwq, bits), 1.0);
  }
  // 8-bit and above share the bitsandbytes path: all traits neutral.
  for (int bits : {8, 16})
    for (QuantScheme s :
         {QuantScheme::kGptq, QuantScheme::kAwq, QuantScheme::kSpqr}) {
      EXPECT_EQ(scheme_kernel_speedup(s, bits), 1.0);
      EXPECT_EQ(scheme_quality_factor(s, bits), 1.0);
    }
}

TEST(QuantScheme, GroundTruthReflectsKernelSpeed) {
  const ModelSpec& m = model_registry_get("opt-30b");
  const GpuSpec& v100 = gpu_registry_get("V100-32G");
  const PhaseShape pre = prefill_shape(8, 512);
  const double gptq =
      layer_time_ground_truth(v100, m, pre, 4, QuantScheme::kGptq);
  const double awq =
      layer_time_ground_truth(v100, m, pre, 4, QuantScheme::kAwq);
  const double spqr =
      layer_time_ground_truth(v100, m, pre, 4, QuantScheme::kSpqr);
  EXPECT_LT(awq, gptq);
  EXPECT_GT(spqr, gptq);
  // FP16 is scheme-independent.
  EXPECT_EQ(layer_time_ground_truth(v100, m, pre, 16, QuantScheme::kAwq),
            layer_time_ground_truth(v100, m, pre, 16, QuantScheme::kSpqr));
}

TEST(QuantScheme, PplImprovesUnderBetterSchemes) {
  const ModelSpec& m = model_registry_get("opt-13b");
  std::vector<int> bits(static_cast<std::size_t>(m.layers), 4);
  const double gptq = plan_ppl(m, bits, QuantScheme::kGptq);
  const double awq = plan_ppl(m, bits, QuantScheme::kAwq);
  const double spqr = plan_ppl(m, bits, QuantScheme::kSpqr);
  EXPECT_LT(spqr, awq);
  EXPECT_LT(awq, gptq);
  EXPECT_GT(spqr, m.ppl_fp16);  // still lossy
  // Default overload is GPTQ.
  EXPECT_DOUBLE_EQ(plan_ppl(m, bits), gptq);
  // 8-bit plans are scheme-neutral.
  std::vector<int> b8(static_cast<std::size_t>(m.layers), 8);
  EXPECT_DOUBLE_EQ(plan_ppl(m, b8, QuantScheme::kSpqr),
                   plan_ppl(m, b8, QuantScheme::kGptq));
}

}  // namespace
}  // namespace llmpq
