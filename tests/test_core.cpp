#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/adabits.hpp"
#include "core/assigner.hpp"
#include "core/bit_transfer.hpp"
#include "core/estimator.hpp"
#include "core/ilp_builder.hpp"
#include "core/plan.hpp"
#include "cost/mem_model.hpp"
#include "quant/quality.hpp"
#include "solver/milp.hpp"

namespace llmpq {
namespace {

ExecutionPlan simple_plan(const ModelSpec& m, const ClusterSpec& c,
                          int bits = 8) {
  ExecutionPlan plan;
  plan.model_name = m.name;
  plan.cluster_name = c.name;
  plan.workload = Workload{};
  const int N = c.num_devices();
  for (int d = 0; d < N; ++d) plan.device_order.push_back(d);
  plan.boundaries.assign(static_cast<std::size_t>(N) + 1, 0);
  for (int p = 0; p < N; ++p)
    plan.boundaries[static_cast<std::size_t>(p) + 1] =
        std::min(m.layers, (p + 1) * ((m.layers + N - 1) / N));
  plan.boundaries[static_cast<std::size_t>(N)] = m.layers;
  plan.layer_bits.assign(static_cast<std::size_t>(m.layers), bits);
  plan.prefill_micro_batch = 4;
  plan.decode_micro_batch = 8;
  return plan;
}

TEST(Plan, ValidateAcceptsConsistentPlan) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  const ExecutionPlan plan = simple_plan(m, cluster);
  EXPECT_NO_THROW(plan.validate(m.layers, cluster.num_devices()));
  EXPECT_EQ(plan.num_stages(), 4);
  EXPECT_EQ(plan.stage_of_layer(0), 0);
  EXPECT_EQ(plan.stage_of_layer(m.layers - 1), 3);
  EXPECT_EQ(plan.prefill_microbatch_count(), 8);
  EXPECT_EQ(plan.decode_microbatch_count(), 4);
}

TEST(Plan, ValidateRejectsBadShapes) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  ExecutionPlan plan = simple_plan(m, cluster);
  plan.layer_bits[0] = 5;
  EXPECT_THROW(plan.validate(m.layers, 4), InvalidArgumentError);
  plan = simple_plan(m, cluster);
  plan.device_order[1] = 0;  // duplicate
  EXPECT_THROW(plan.validate(m.layers, 4), InvalidArgumentError);
  plan = simple_plan(m, cluster);
  plan.boundaries[2] = plan.boundaries[1] - 1;  // non-monotone
  EXPECT_THROW(plan.validate(m.layers, 4), InvalidArgumentError);
}

TEST(Plan, SerializeRoundTrips) {
  const auto [cluster, model_name] = paper_cluster(4);
  const ModelSpec& m = model_registry_get(model_name);
  ExecutionPlan plan = simple_plan(m, cluster, 4);
  plan.layer_bits[7] = 16;
  const ExecutionPlan back = ExecutionPlan::deserialize(plan.serialize());
  EXPECT_EQ(back.model_name, plan.model_name);
  EXPECT_EQ(back.boundaries, plan.boundaries);
  EXPECT_EQ(back.layer_bits, plan.layer_bits);
  EXPECT_EQ(back.device_order, plan.device_order);
  EXPECT_EQ(back.prefill_micro_batch, plan.prefill_micro_batch);
  EXPECT_EQ(back.workload.prompt_len, plan.workload.prompt_len);
  EXPECT_EQ(back.weight_format, QuantFormat::kPerChannel);

  // Group formats survive the round trip too (and old files without the
  // key keep defaulting to per-channel, which the first pass covered).
  plan.weight_format = QuantFormat::kGroup64;
  EXPECT_EQ(ExecutionPlan::deserialize(plan.serialize()).weight_format,
            QuantFormat::kGroup64);
}

TEST(Plan, DeserializeRejectsCorruptNumericFields) {
  // A corrupted strategy file must surface as InvalidArgumentError naming
  // the bad key — not truncate "10x" to 10 or abort on an uncaught
  // std::stoi exception.
  for (const char* bad : {"gen_tokens=10x", "layer_bits=8,x,8",
                          "global_batch=", "boundaries=0,1.5"}) {
    try {
      ExecutionPlan::deserialize(bad);
      FAIL() << "accepted '" << bad << "'";
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find("plan deserialize"),
                std::string::npos)
          << bad;
    }
  }
}

TEST(Estimator, SingleStageFormulaExact) {
  // One device: e2e = [sum_mb pre] + (n-1) * [sum_mb dec]; with one
  // micro-batch each: pre + (n-1)*dec.
  const auto [cluster, model_name] = paper_cluster(2);  // 1x A100, opt-13b
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  ExecutionPlan plan = simple_plan(m, cluster);
  plan.prefill_micro_batch = 32;
  plan.decode_micro_batch = 32;
  const PlanEstimate est = estimate_plan(cost, plan);
  ASSERT_TRUE(est.mem_feasible);
  const double pre = est.stage_prefill_time[0];
  const double dec = est.stage_decode_time[0];
  EXPECT_NEAR(est.e2e_latency,
              pre + (plan.workload.gen_tokens - 1) * dec, 1e-9);
  EXPECT_GT(est.throughput_tokens_per_s, 0.0);
}

TEST(Estimator, DetectsOom) {
  // FP16 OPT-30b cannot fit 3xP100(12G)+V100(32G) without quantization.
  const auto [cluster, model_name] = paper_cluster(4);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const ExecutionPlan plan = simple_plan(m, cluster, 16);
  const PlanEstimate est = estimate_plan(cost, plan);
  EXPECT_FALSE(est.mem_feasible);
  EXPECT_FALSE(est.infeasible_reason.empty());
}

TEST(Estimator, QualityPenaltyUsesIndicator) {
  const auto [cluster, model_name] = paper_cluster(2);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const IndicatorResult ind = compute_indicator(m, IndicatorKind::kVariance);
  const ExecutionPlan plan8 = simple_plan(m, cluster, 8);
  const ExecutionPlan plan4 = simple_plan(m, cluster, 4);
  const PlanEstimate e8 = estimate_plan(cost, plan8, &ind, 10.0);
  const PlanEstimate e4 = estimate_plan(cost, plan4, &ind, 10.0);
  EXPECT_LT(e8.quality_penalty, e4.quality_penalty);
  // Penalty at uniform 4-bit is normalized to kOmegaScale * L.
  EXPECT_NEAR(e4.quality_penalty, kOmegaScale * m.layers, 1e-6);
  EXPECT_NEAR(e8.objective, e8.e2e_latency + 10.0 * e8.quality_penalty,
              1e-9);
}

TEST(Adabits, ProducesFeasiblePlanOnCluster3) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const IndicatorResult ind = compute_indicator(m, IndicatorKind::kVariance);
  const ExecutionPlan plan =
      adabits_plan(cost, ind, {0, 1, 2, 3}, 4, 8);
  plan.validate(m.layers, 4);
  const PlanEstimate est = estimate_plan(cost, plan);
  EXPECT_TRUE(est.mem_feasible) << est.infeasible_reason;
  // The V100 (32G, device 3) should carry more layers than a T4 (16G).
  EXPECT_GT(plan.stage_size(3), plan.stage_size(0));
}

TEST(Adabits, UsesHigherBitsWhenMemoryAllows) {
  // Single A100-40G serving OPT-13b: plenty of memory -> high precision.
  const auto [cluster, model_name] = paper_cluster(2);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const IndicatorResult ind = compute_indicator(m, IndicatorKind::kVariance);
  const ExecutionPlan plan = adabits_plan(cost, ind, {0}, 4, 8);
  double mean_bits = 0;
  for (int b : plan.layer_bits) mean_bits += b;
  mean_bits /= m.layers;
  EXPECT_GE(mean_bits, 8.0);
}

TEST(Adabits, ThrowsWhenModelCannotFit) {
  // OPT-66b on a single T4 (16 GB) is hopeless even at 3 bits.
  const ClusterSpec tiny = make_cluster("tiny", {{"T4-16G", 1}});
  const ModelSpec& m = model_registry_get("opt-66b");
  CostProvider cost(m, tiny, CostMode::kProfiled);
  const IndicatorResult ind = compute_indicator(m, IndicatorKind::kVariance);
  EXPECT_THROW(adabits_plan(cost, ind, {0}, 4, 8), InfeasibleError);
}

TEST(BitTransfer, NeverWorsensObjective) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const IndicatorResult ind = compute_indicator(m, IndicatorKind::kVariance);
  const ExecutionPlan seed = adabits_plan(cost, ind, {0, 1, 2, 3}, 4, 8);
  const PlanEstimate seed_est = estimate_plan(cost, seed, &ind, 1.0);
  BitTransferOptions opt;
  opt.theta = 1.0;
  const BitTransferResult r = bit_transfer(cost, ind, seed, opt);
  EXPECT_TRUE(r.estimate.mem_feasible);
  EXPECT_LE(r.estimate.objective, seed_est.objective + 1e-9);
  r.plan.validate(m.layers, 4);
}

TEST(BitTransfer, ImprovesImbalancedStart) {
  // Start with everything on the V100 and nothing on the T4s at 3 bits:
  // the heuristic must migrate layers/precision and cut the objective.
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const IndicatorResult ind = compute_indicator(m, IndicatorKind::kVariance);
  ExecutionPlan start = adabits_plan(cost, ind, {0, 1, 2, 3}, 4, 8);
  // Skew: give stage 0 as much as fits, starving the others.
  start.boundaries = {0, 8, 16, 24, m.layers};
  std::fill(start.layer_bits.begin(), start.layer_bits.end(), 3);
  const PlanEstimate before = estimate_plan(cost, start, &ind, 1.0);
  const BitTransferResult r = bit_transfer(cost, ind, start, {400, 1.0});
  EXPECT_LT(r.estimate.objective, before.objective);
  EXPECT_GT(r.moves_applied, 0);
}

TEST(IlpBuilder, ExtractEncodeRoundTrip) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const IndicatorResult ind = compute_indicator(m, IndicatorKind::kVariance);
  const ExecutionPlan plan = adabits_plan(cost, ind, {0, 1, 2, 3}, 4, 8);
  IlpBuilder builder(cost, ind, {0, 1, 2, 3}, 4, 8, 1.0, 1);
  const auto x = builder.encode_plan(plan);
  const ExecutionPlan back = builder.extract_plan(x);
  EXPECT_EQ(back.boundaries, plan.boundaries);
  EXPECT_EQ(back.layer_bits, plan.layer_bits);
}

TEST(IlpBuilder, WarmStartSatisfiesAllRows) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const IndicatorResult ind = compute_indicator(m, IndicatorKind::kVariance);
  const ExecutionPlan seed = adabits_plan(cost, ind, {0, 1, 2, 3}, 4, 8);
  const BitTransferResult r = bit_transfer(cost, ind, seed, {200, 1.0});
  for (int group : {1, 2}) {
    IlpBuilder builder(cost, ind, {0, 1, 2, 3}, 4, 8, 1.0, group);
    const MilpProblem milp = builder.build();
    const auto x = builder.encode_plan(r.plan);
    for (const auto& row : milp.lp.rows()) {
      double lhs = 0.0;
      for (const auto& [col, coef] : row.coeffs)
        lhs += coef * x[static_cast<std::size_t>(col)];
      switch (row.type) {
        case LpProblem::RowType::kLe:
          EXPECT_LE(lhs, row.rhs + 1e-6);
          break;
        case LpProblem::RowType::kGe:
          EXPECT_GE(lhs, row.rhs - 1e-6);
          break;
        case LpProblem::RowType::kEq:
          EXPECT_NEAR(lhs, row.rhs, 1e-6);
          break;
      }
    }
  }
}

TEST(IlpBuilder, SolvedPlanBeatsOrMatchesWarmStart) {
  // Single-device instance: small enough to solve to optimality.
  const auto [cluster, model_name] = paper_cluster(1);  // 1x V100, opt-13b
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const IndicatorResult ind = compute_indicator(m, IndicatorKind::kVariance);
  const ExecutionPlan seed = adabits_plan(cost, ind, {0}, 4, 16);
  const BitTransferResult heur = bit_transfer(cost, ind, seed, {200, 1.0});
  IlpBuilder builder(cost, ind, {0}, 4, 16, 1.0, 1);
  MilpProblem milp = builder.build();
  MilpOptions mo;
  mo.time_limit_s = 20.0;
  mo.warm_start = builder.encode_plan(heur.plan);
  const MilpSolution sol = solve_milp(milp, mo);
  ASSERT_TRUE(sol.status == MilpStatus::kOptimal ||
              sol.status == MilpStatus::kFeasible);
  const ExecutionPlan plan = builder.extract_plan(sol.x);
  const PlanEstimate ilp_est = estimate_plan(cost, plan, &ind, 1.0);
  EXPECT_TRUE(ilp_est.mem_feasible);
  EXPECT_LE(ilp_est.objective, heur.estimate.objective * 1.001);
}

TEST(Assigner, OrderingEnumeration) {
  const auto orders3 =
      enumerate_device_orderings(paper_cluster(3).cluster, 24);
  EXPECT_EQ(orders3.size(), 4u);  // multiset perms of {T4,T4,T4,V100}
  const auto orders6 =
      enumerate_device_orderings(paper_cluster(6).cluster, 24);
  EXPECT_EQ(orders6.size(), 6u);  // C(4,2)
  const auto capped =
      enumerate_device_orderings(paper_cluster(7).cluster, 10);
  EXPECT_EQ(capped.size(), 10u);  // C(8,4)=70 truncated
  for (const auto& o : capped) {
    std::vector<bool> seen(8, false);
    for (int d : o) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(d)]);
      seen[static_cast<std::size_t>(d)] = true;
    }
  }
}

TEST(Assigner, MicrobatchCandidates) {
  Workload w;  // batch 32
  const auto pre = prefill_microbatch_candidates(w, 8);
  EXPECT_EQ(pre, (std::vector<int>{1, 2, 4, 8}));
  const auto dec = decode_microbatch_candidates(w, 4);
  for (int mb : dec) {
    EXPECT_GE(mb, 1);
    EXPECT_LE(mb, 32);
  }
}

TEST(Assigner, HeuristicPlanBeatsUniformOnHeteroCluster) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  const AssignerResult r = assign(cost, opt);
  r.plan.validate(m.layers, 4);
  EXPECT_TRUE(r.estimate.mem_feasible);
  EXPECT_GT(r.stats.combos_tried, 1);
  EXPECT_EQ(r.stats.solver_used, "heuristic");
  // Must beat a uniform-8bit even split.
  ExecutionPlan uniform = simple_plan(m, cluster, 8);
  const PlanEstimate uni_est = estimate_plan(cost, uniform);
  if (uni_est.mem_feasible) {
    EXPECT_LT(r.estimate.e2e_latency, uni_est.e2e_latency);
  }
}

// ---- Acceptance criterion for the format-aware planner: a plan produced
// under a group-wise format carries that format, and its per-stage weight
// estimate equals the exact packed-bytes sum of the stage's layers —
// byte-for-byte, the same formula the runtime's QuantizedMatrix uses.
TEST(Assigner, GroupFormatStampedAndMemoryReconcilesExactly) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  cost.set_format(QuantFormat::kGroup32);
  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  const AssignerResult r = assign(cost, opt);
  EXPECT_EQ(r.plan.weight_format, QuantFormat::kGroup32);
  EXPECT_TRUE(r.estimate.mem_feasible);
  ASSERT_EQ(r.estimate.stage_mem.size(), r.plan.device_order.size());
  for (std::size_t s = 0; s < r.estimate.stage_mem.size(); ++s) {
    std::int64_t expected = 0;
    for (int l = r.plan.boundaries[s]; l < r.plan.boundaries[s + 1]; ++l) {
      expected += layer_weight_bytes(
          m, r.plan.layer_bits[static_cast<std::size_t>(l)],
          r.plan.weight_format);
    }
    EXPECT_EQ(r.estimate.stage_mem[s].weights, expected) << "stage " << s;
  }
  // The same plan re-estimated as per-channel must claim strictly fewer
  // weight bytes: group metadata is real memory the planner now charges.
  ExecutionPlan pc = r.plan;
  pc.weight_format = QuantFormat::kPerChannel;
  const PlanEstimate pc_est = estimate_plan(cost, pc);
  std::int64_t group_total = 0, pc_total = 0;
  for (std::size_t s = 0; s < r.estimate.stage_mem.size(); ++s) {
    group_total += r.estimate.stage_mem[s].weights;
    pc_total += pc_est.stage_mem[s].weights;
  }
  EXPECT_LT(pc_total, group_total);
}

TEST(Assigner, ThetaTradesThroughputForQuality) {
  // Fig 8 shape: larger theta -> better (lower) PPL, lower throughput.
  const auto [cluster, model_name] = paper_cluster(9);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  AssignerOptions lo, hi;
  lo.solver = hi.solver = SolverKind::kHeuristic;
  lo.theta = 0.01;
  hi.theta = 1000.0;
  const AssignerResult rlo = assign(cost, lo);
  const AssignerResult rhi = assign(cost, hi);
  const double ppl_lo = plan_ppl(m, rlo.plan.layer_bits);
  const double ppl_hi = plan_ppl(m, rhi.plan.layer_bits);
  // The hidden per-layer quality jitter the indicator cannot observe allows
  // sub-0.01 inversions; the trend must hold beyond that.
  EXPECT_LE(ppl_hi, ppl_lo + 0.01);
  EXPECT_GE(rlo.estimate.throughput_tokens_per_s,
            rhi.estimate.throughput_tokens_per_s - 1e-9);
  // The quality-weighted plan must carry at least as many high-precision
  // layers (mean bits monotone in theta).
  double bits_lo = 0, bits_hi = 0;
  for (int b : rlo.plan.layer_bits) bits_lo += b;
  for (int b : rhi.plan.layer_bits) bits_hi += b;
  EXPECT_GE(bits_hi, bits_lo);
}

TEST(Assigner, InfeasibleClusterThrows) {
  const ClusterSpec tiny = make_cluster("tiny", {{"P100-12G", 1}});
  const ModelSpec& m = model_registry_get("opt-66b");
  CostProvider cost(m, tiny, CostMode::kProfiled);
  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  EXPECT_THROW(assign(cost, opt), InfeasibleError);
}

}  // namespace
}  // namespace llmpq
