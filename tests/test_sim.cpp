#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/adabits.hpp"
#include "core/estimator.hpp"
#include "cost/cost_provider.hpp"
#include "sim/event_queue.hpp"
#include "sim/offload_sim.hpp"
#include "sim/pipeline_sim.hpp"

namespace llmpq {
namespace {

TEST(EventQueue, ProcessesInTimeOrderWithFifoTies) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&](double) { order.push_back(3); });
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(1.0, [&](double) { order.push_back(2); });  // tie: FIFO
  const double end = q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(end, 2.0);
  EXPECT_EQ(q.events_processed(), 3u);
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void(double)> tick = [&](double now) {
    if (++count < 5) q.schedule(now + 1.0, tick);
  };
  q.schedule(0.0, tick);
  EXPECT_DOUBLE_EQ(q.run(), 4.0);
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, RejectsSchedulingIntoPast) {
  EventQueue q;
  q.schedule(5.0, [&](double) {
    EXPECT_THROW(q.schedule(1.0, [](double) {}), InvalidArgumentError);
  });
  q.run();
}

ExecutionPlan plan_for(const ModelSpec& m, const ClusterSpec& c, int bits,
                       int pre_mb, int dec_mb) {
  ExecutionPlan plan;
  plan.model_name = m.name;
  plan.cluster_name = c.name;
  const int N = c.num_devices();
  for (int d = 0; d < N; ++d) plan.device_order.push_back(d);
  plan.boundaries.assign(static_cast<std::size_t>(N) + 1, 0);
  for (int p = 0; p < N; ++p)
    plan.boundaries[static_cast<std::size_t>(p) + 1] =
        std::min(m.layers, (p + 1) * ((m.layers + N - 1) / N));
  plan.boundaries[static_cast<std::size_t>(N)] = m.layers;
  plan.layer_bits.assign(static_cast<std::size_t>(m.layers), bits);
  plan.prefill_micro_batch = pre_mb;
  plan.decode_micro_batch = dec_mb;
  return plan;
}

TEST(PipelineSim, SingleStageMatchesSerialSum) {
  // One device, one micro-batch: no pipelining, latency is just the sum of
  // all passes — the simulator must agree with hand arithmetic.
  const auto [cluster, model_name] = paper_cluster(2);
  const ModelSpec& m = model_registry_get(model_name);
  ExecutionPlan plan = plan_for(m, cluster, 8, 32, 32);
  const SimResult sim = simulate_plan(m, cluster, plan);
  ASSERT_TRUE(sim.ok) << sim.error;
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const PlanEstimate est = estimate_plan(cost, plan);
  // Single stage: analytic formula is exact, so sim == estimate.
  EXPECT_NEAR(sim.e2e_latency_s / est.e2e_latency, 1.0, 1e-6);
  EXPECT_NEAR(sim.stage_utilization[0], 1.0, 1e-6);
}

TEST(PipelineSim, ZeroGenerationWorkloadIsFinite) {
  // gen_tokens == 0 is a prefill-only run: throughput is zero (no tokens
  // generated) and no metric may divide by a zero final time.
  const auto [cluster, model_name] = paper_cluster(2);
  const ModelSpec& m = model_registry_get(model_name);
  ExecutionPlan plan = plan_for(m, cluster, 8, 32, 32);
  plan.workload.gen_tokens = 0;
  const SimResult sim = simulate_plan(m, cluster, plan);
  ASSERT_TRUE(sim.ok) << sim.error;
  EXPECT_DOUBLE_EQ(sim.throughput_tokens_per_s, 0.0);
  for (double u : sim.stage_utilization) {
    EXPECT_TRUE(std::isfinite(u));
    EXPECT_GE(u, 0.0);
  }
}

TEST(PipelineSim, DetectsOom) {
  const auto [cluster, model_name] = paper_cluster(4);
  const ModelSpec& m = model_registry_get(model_name);
  const ExecutionPlan plan = plan_for(m, cluster, 16, 8, 8);
  const SimResult sim = simulate_plan(m, cluster, plan);
  EXPECT_FALSE(sim.ok);
  EXPECT_NE(sim.error.find("OOM"), std::string::npos);
}

TEST(PipelineSim, EstimatorTracksSimulator) {
  // The planner's analytic objective must stay within ~25% of the DES
  // "measurement" for realistic multi-stage plans (it is intentionally a
  // slightly conservative bound on bubbles).
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);
  const IndicatorResult ind = compute_indicator(m, IndicatorKind::kVariance);
  const ExecutionPlan plan = adabits_plan(cost, ind, {0, 1, 2, 3}, 4, 8);
  const PlanEstimate est = estimate_plan(cost, plan);
  const SimResult sim = simulate_plan(m, cluster, plan);
  ASSERT_TRUE(sim.ok) << sim.error;
  EXPECT_GT(est.e2e_latency, 0.70 * sim.e2e_latency_s);
  EXPECT_LT(est.e2e_latency, 1.60 * sim.e2e_latency_s);
}

TEST(PipelineSim, MoreMicrobatchesReducePrefillBubble) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  const SimResult one = simulate_plan(m, cluster, plan_for(m, cluster, 4, 32, 8));
  const SimResult four = simulate_plan(m, cluster, plan_for(m, cluster, 4, 8, 8));
  ASSERT_TRUE(one.ok && four.ok);
  EXPECT_LT(four.prefill_latency_s, one.prefill_latency_s);
}

TEST(PipelineSim, UtilizationBoundedAndBusy) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  const SimResult sim = simulate_plan(m, cluster, plan_for(m, cluster, 4, 4, 8));
  ASSERT_TRUE(sim.ok);
  for (double u : sim.stage_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GT(sim.events_processed, 100u);
}

TEST(PipelineSim, EmptyStagesAreSkipped) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  ExecutionPlan plan = plan_for(m, cluster, 4, 8, 8);
  // Put everything on devices 0 and 3.
  plan.boundaries = {0, 24, 24, 24, m.layers};
  const SimResult sim = simulate_plan(m, cluster, plan);
  if (sim.ok) {
    EXPECT_EQ(sim.stage_busy_s[1], 0.0);
    EXPECT_EQ(sim.stage_busy_s[2], 0.0);
    EXPECT_GT(sim.stage_busy_s[0], 0.0);
  }
}

TEST(PipelineSim, JitterChangesTimingDeterministically) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  const ExecutionPlan plan = plan_for(m, cluster, 4, 8, 8);
  SimOptions jitter;
  jitter.jitter = 0.05;
  const SimResult a = simulate_plan(m, cluster, plan, jitter);
  const SimResult b = simulate_plan(m, cluster, plan, jitter);
  const SimResult clean = simulate_plan(m, cluster, plan);
  ASSERT_TRUE(a.ok && b.ok && clean.ok);
  EXPECT_DOUBLE_EQ(a.e2e_latency_s, b.e2e_latency_s);  // same seed
  EXPECT_NE(a.e2e_latency_s, clean.e2e_latency_s);
  EXPECT_NEAR(a.e2e_latency_s / clean.e2e_latency_s, 1.0, 0.10);
}

TEST(OffloadSim, FitsEntirelyWhenMemoryAmple) {
  const auto [cluster, model_name] = paper_cluster(2);  // A100-40G, 13b
  const ModelSpec& m = model_registry_get(model_name);
  Workload w;
  const OffloadResult r = simulate_offload(m, cluster, w, 8);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.resident_fraction[0], 1.0, 1e-9);
  EXPECT_GT(r.throughput_tokens_per_s, 0.0);
}

TEST(OffloadSim, SpillSlowsThroughput) {
  // OPT-30b FP16 on 4x T4: heavy spill -> much slower than int8.
  const auto [cluster, model_name] = paper_cluster(9);
  const ModelSpec& m = model_registry_get(model_name);
  Workload w;
  const OffloadResult fp16 = simulate_offload(m, cluster, w, 16);
  const OffloadResult int8 = simulate_offload(m, cluster, w, 8);
  ASSERT_TRUE(fp16.ok && int8.ok);
  EXPECT_LT(fp16.resident_fraction[0], 1.0);
  EXPECT_GT(int8.throughput_tokens_per_s, fp16.throughput_tokens_per_s);
}

TEST(OffloadSim, ThroughputConsistentWithLatency) {
  const auto [cluster, model_name] = paper_cluster(9);
  const ModelSpec& m = model_registry_get(model_name);
  Workload w;
  const OffloadResult r = simulate_offload(m, cluster, w, 8);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.throughput_tokens_per_s,
              static_cast<double>(w.total_generated_tokens()) /
                  r.e2e_latency_s,
              1e-9);
}

// Property sweep: for random feasible plans, the analytic estimate stays
// within a fixed band of the discrete-event measurement, never reports a
// *lower* prefill-phase cost than the pure serial lower bound, and the
// simulator's throughput accounting is self-consistent.
class RandomPlanFidelity : public ::testing::TestWithParam<int> {};

TEST_P(RandomPlanFidelity, EstimateTracksSimulation) {
  Rng rng(900 + static_cast<std::uint64_t>(GetParam()));
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& m = model_registry_get(model_name);
  CostProvider cost(m, cluster, CostMode::kProfiled);

  ExecutionPlan plan;
  plan.model_name = m.name;
  plan.cluster_name = cluster.name;
  plan.device_order = {0, 1, 2, 3};
  std::shuffle(plan.device_order.begin(), plan.device_order.end(), rng);
  // Random non-degenerate boundaries.
  std::vector<int> cuts;
  for (int i = 0; i < 3; ++i)
    cuts.push_back(static_cast<int>(rng.uniform_int(6, m.layers - 6)));
  std::sort(cuts.begin(), cuts.end());
  plan.boundaries = {0, cuts[0], cuts[1], cuts[2], m.layers};
  plan.layer_bits.resize(static_cast<std::size_t>(m.layers));
  for (auto& b : plan.layer_bits)
    b = kBitCandidates[static_cast<std::size_t>(rng.uniform_int(0, 2))];
  plan.prefill_micro_batch = 1 << rng.uniform_int(0, 3);
  plan.decode_micro_batch = 4 << rng.uniform_int(0, 2);

  const PlanEstimate est = estimate_plan(cost, plan);
  const SimResult sim = simulate_plan(m, cluster, plan);
  ASSERT_EQ(est.mem_feasible, sim.ok) << sim.error;
  if (!sim.ok) return;
  EXPECT_GT(est.e2e_latency, 0.6 * sim.e2e_latency_s);
  EXPECT_LT(est.e2e_latency, 1.7 * sim.e2e_latency_s);
  EXPECT_NEAR(sim.throughput_tokens_per_s,
              plan.workload.total_generated_tokens() / sim.e2e_latency_s,
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomPlanFidelity, ::testing::Range(0, 25));

}  // namespace
}  // namespace llmpq
