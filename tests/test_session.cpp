// Step-level decode sessions over the paged KV cache: the KvCacheManager
// unit suite (page reuse, LRU eviction/preemption, footprint accounting
// reconciled with the planner's memory model), the engine session API, and
// the mixed-length serving regression that pins ragged batches to each
// request's unbatched greedy continuation — the fidelity bug the padded
// replay path had.

#include <gtest/gtest.h>

#include <new>
#include <vector>

#include "baselines/baselines.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "cost/mem_model.hpp"
#include "runtime/engine.hpp"
#include "runtime/kv_cache.hpp"
#include "runtime/kv_cache_manager.hpp"
#include "runtime/transformer.hpp"
#include "serve/online_engine.hpp"

namespace llmpq {
namespace {

// ---------------------------------------------------------------------------
// KvCacheManager: paged allocation, eviction, accounting.
// ---------------------------------------------------------------------------

KvCacheManagerOptions paged(std::size_t page_size, std::size_t max_pages) {
  KvCacheManagerOptions o;
  o.page_size = page_size;
  o.max_pages = max_pages;
  return o;
}

std::vector<float> vec_of(std::size_t hidden, float base) {
  std::vector<float> v(hidden);
  for (std::size_t i = 0; i < hidden; ++i)
    v[i] = base + static_cast<float>(i);
  return v;
}

TEST(KvCacheManager, AppendReadRoundTripAcrossPages) {
  KvCacheManager m(/*hidden=*/4, paged(/*page_size=*/3, /*max_pages=*/0));
  m.begin_seq(7);
  m.reserve(7, 8);  // 3 pages
  for (int t = 0; t < 8; ++t) {
    const auto k = vec_of(4, 100.0f + static_cast<float>(t));
    const auto v = vec_of(4, 200.0f + static_cast<float>(t));
    m.append(7, k.data(), v.data());
  }
  EXPECT_EQ(m.filled(7), 8u);
  for (int t = 0; t < 8; ++t) {
    const float* k = m.k_at(7, static_cast<std::size_t>(t));
    const float* v = m.v_at(7, static_cast<std::size_t>(t));
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_FLOAT_EQ(k[i], 100.0f + static_cast<float>(t) +
                                static_cast<float>(i));
      EXPECT_FLOAT_EQ(v[i], 200.0f + static_cast<float>(t) +
                                static_cast<float>(i));
    }
  }
}

TEST(KvCacheManager, ValidatesSequenceAndPosition) {
  KvCacheManager m(/*hidden=*/2, paged(4, 0));
  const auto k = vec_of(2, 0.0f), v = vec_of(2, 0.0f);
  EXPECT_THROW(m.append(1, k.data(), v.data()), InvalidArgumentError);
  m.begin_seq(1);
  EXPECT_THROW(m.begin_seq(1), InvalidArgumentError);  // already live
  // Appending without a reservation is rejected, not silently grown.
  EXPECT_THROW(m.append(1, k.data(), v.data()), InvalidArgumentError);
  m.reserve(1, 2);
  m.append(1, k.data(), v.data());
  EXPECT_NO_THROW(m.k_at(1, 0));
  EXPECT_THROW(m.k_at(1, 1), InvalidArgumentError);  // not filled
  EXPECT_THROW(m.v_at(1, 1), InvalidArgumentError);
  EXPECT_THROW(m.k_at(2, 0), InvalidArgumentError);  // unknown sequence
  EXPECT_THROW(m.truncate(1, 2), InvalidArgumentError);
  m.truncate(1, 0);
  EXPECT_EQ(m.filled(1), 0u);
  m.free_seq(1);
  EXPECT_THROW(m.free_seq(1), InvalidArgumentError);
}

TEST(KvCacheManager, FreedPagesAreReusedNotReallocated) {
  KvCacheManager m(/*hidden=*/8, paged(16, 0));
  m.begin_seq(1);
  m.reserve(1, 40);  // 3 pages
  EXPECT_EQ(m.pool_pages(), 3u);
  const std::size_t footprint = m.footprint_bytes();
  m.free_seq(1);
  EXPECT_EQ(m.free_pages(), 3u);
  EXPECT_EQ(m.footprint_bytes(), footprint);  // pages pooled, not released
  m.begin_seq(2);
  m.reserve(2, 48);  // exactly the 3 recycled pages
  EXPECT_EQ(m.pool_pages(), 3u);
  EXPECT_EQ(m.free_pages(), 0u);
  EXPECT_EQ(m.footprint_bytes(), footprint);
}

TEST(KvCacheManager, CappedPoolEvictsLruAndFiresPreemptHook) {
  KvCacheManager m(/*hidden=*/2, paged(/*page_size=*/4, /*max_pages=*/2));
  std::vector<int> preempted;
  m.set_preempt_hook([&](int seq) { preempted.push_back(seq); });
  const auto k = vec_of(2, 1.0f), v = vec_of(2, 2.0f);
  m.begin_seq(10);
  m.reserve(10, 4);
  m.append(10, k.data(), v.data());
  m.begin_seq(11);
  m.reserve(11, 4);  // pool full: 2 pages, both held
  m.append(11, k.data(), v.data());
  // Touch 10 (a no-op re-reservation bumps recency, exactly what a decode
  // step does) so 11 is the LRU victim.
  m.reserve(10, 4);
  m.begin_seq(12);
  m.reserve(12, 4);  // no free page, cap reached -> evict 11
  EXPECT_EQ(preempted, std::vector<int>{11});
  EXPECT_EQ(m.evictions(), 1u);
  EXPECT_EQ(m.filled(11), 0u);  // victim must be re-prefilled
  EXPECT_EQ(m.filled(10), 1u);  // survivor untouched
  EXPECT_EQ(m.pool_pages(), 2u);
}

TEST(KvCacheManager, PinnedSequencesAreNeverEvicted) {
  KvCacheManager m(/*hidden=*/2, paged(4, 1));
  const auto k = vec_of(2, 0.0f), v = vec_of(2, 0.0f);
  m.begin_seq(1);
  m.pin(1);
  m.reserve(1, 4);
  m.append(1, k.data(), v.data());
  m.begin_seq(2);
  // The only page belongs to a pinned sequence; a reservation can neither
  // steal it nor cannibalize its own sequence, so it must fail cleanly.
  EXPECT_THROW(m.reserve(2, 4), std::bad_alloc);
  EXPECT_EQ(m.filled(1), 1u);
  m.unpin(1);
  EXPECT_NO_THROW(m.reserve(2, 4));  // now 1 is evictable
  EXPECT_EQ(m.evictions(), 1u);
}

TEST(KvCacheManager, EvictedSequenceRePrefillsCorrectly) {
  KvCacheManager m(/*hidden=*/2, paged(/*page_size=*/4, /*max_pages=*/2));
  int victims = 0;
  m.set_preempt_hook([&](int) { ++victims; });
  m.begin_seq(1);
  m.reserve(1, 4);
  for (int t = 0; t < 4; ++t) {
    const auto k = vec_of(2, 10.0f + static_cast<float>(t));
    const auto v = vec_of(2, 20.0f + static_cast<float>(t));
    m.append(1, k.data(), v.data());
  }
  m.begin_seq(2);
  m.reserve(2, 8);  // takes both pages: evicts 1, then the freed page
  EXPECT_EQ(victims, 1);
  EXPECT_EQ(m.filled(1), 0u);
  m.free_seq(2);
  // Re-prefill the victim: reserve again, append the same data, read back.
  m.reserve(1, 4);
  for (int t = 0; t < 4; ++t) {
    const auto k = vec_of(2, 10.0f + static_cast<float>(t));
    const auto v = vec_of(2, 20.0f + static_cast<float>(t));
    m.append(1, k.data(), v.data());
  }
  for (int t = 0; t < 4; ++t)
    EXPECT_FLOAT_EQ(m.k_at(1, static_cast<std::size_t>(t))[0],
                    10.0f + static_cast<float>(t));
}

TEST(KvCacheManager, FootprintIsMonotonicAcrossChurn) {
  KvCacheManager m(/*hidden=*/4, paged(8, 0));
  std::size_t last = m.footprint_bytes();
  for (int round = 0; round < 5; ++round) {
    m.begin_seq(round);
    m.reserve(round, 8 * (round + 1));
    EXPECT_GE(m.footprint_bytes(), last);
    EXPECT_LE(m.used_bytes(), m.footprint_bytes());
    last = m.footprint_bytes();
    m.free_seq(round);
    EXPECT_EQ(m.footprint_bytes(), last);  // frees return pages to the pool
  }
}

TEST(KvCacheManager, PlannedBytesReconcilesWithPlannerMemModel) {
  // The planner reserves FP16 K+V at full length (layer_kv_bytes); the
  // runtime pools FP32 pages. Whenever the page size divides max_seq the
  // paged plan is exactly the FP32/FP16 factor (2x) of the planner's
  // number — the two memory models agree up to precision.
  ModelSpec spec;
  spec.hidden = 64;
  const std::size_t batch = 4, max_seq = 128, page = 16;
  const auto planner =
      static_cast<std::size_t>(layer_kv_bytes(spec, batch, max_seq));
  EXPECT_EQ(KvCacheManager::planned_bytes(batch, max_seq, 64, page),
            2 * planner);
  // Non-dividing page size rounds up by at most one page per sequence.
  const std::size_t ragged =
      KvCacheManager::planned_bytes(batch, 100, 64, page);
  EXPECT_EQ(ragged, KvCacheManager::planned_bytes(batch, 112, 64, page));
  // And the real pool matches the static plan.
  KvCacheManager m(64, paged(page, 0));
  for (int b = 0; b < static_cast<int>(batch); ++b) {
    m.begin_seq(b);
    m.reserve(b, max_seq);
  }
  EXPECT_EQ(m.footprint_bytes(),
            KvCacheManager::planned_bytes(batch, max_seq, 64, page));
}

// ---------------------------------------------------------------------------
// Legacy KvCache: reads are bounds-checked (same contract as the manager).
// ---------------------------------------------------------------------------

TEST(KvCache, ReadsValidateSequenceAndFilledPosition) {
  KvCache c(/*batch=*/2, /*max_seq=*/4, /*hidden=*/2);
  const auto k = vec_of(2, 1.0f), v = vec_of(2, 2.0f);
  c.append(0, k.data(), v.data());
  EXPECT_NO_THROW(c.k_at(0, 0));
  EXPECT_NO_THROW(c.v_at(0, 0));
  // Position 1 exists in the reservation but was never written: reading it
  // would silently return zeros, so it must throw instead.
  EXPECT_THROW(c.k_at(0, 1), InvalidArgumentError);
  EXPECT_THROW(c.v_at(0, 1), InvalidArgumentError);
  EXPECT_THROW(c.k_at(1, 0), InvalidArgumentError);  // nothing filled
  EXPECT_THROW(c.k_at(2, 0), InvalidArgumentError);  // sequence OOR
  EXPECT_THROW(c.v_at(2, 0), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Engine session API: step-level decode with persistent KV.
// ---------------------------------------------------------------------------

ModelSpec tiny_spec() {
  ModelSpec m;
  m.name = "tiny-session";
  m.family = "opt";
  m.hidden = 32;
  m.ffn = 128;
  m.heads = 4;
  m.layers = 6;
  m.vocab = 96;
  m.max_pos = 64;
  return m;
}

std::vector<TokenId> make_prompt(Rng& rng, const ModelSpec& m, int len) {
  std::vector<TokenId> p;
  for (int t = 0; t < len; ++t)
    p.push_back(static_cast<TokenId>(rng.uniform_int(0, m.vocab - 1)));
  return p;
}

class SessionEngineTest : public ::testing::Test {
 protected:
  SessionEngineTest()
      : spec_(tiny_spec()),
        weights_(build_random_model(
            spec_, std::vector<int>(static_cast<std::size_t>(spec_.layers), 8),
            2024)),
        engine_(weights_, {{0, 3}, {3, 6}}, 2, 2) {}

  /// Unbatched ground truth for one prompt.
  std::vector<TokenId> reference_one(const std::vector<TokenId>& prompt,
                                     int gen) {
    return reference_generate(weights_, {prompt}, gen)[0];
  }

  ModelSpec spec_;
  ModelWeights weights_;
  PipelineEngine engine_;
};

TEST_F(SessionEngineTest, MixedLengthSessionsMatchUnbatchedReference) {
  // The tentpole property: sessions of DIFFERENT lengths prefill and
  // decode together in one ragged batch, and every request reproduces its
  // unbatched greedy continuation exactly — there is no padding anywhere
  // to perturb attention.
  Rng rng(101);
  const int lens[] = {5, 11, 17};
  const int gen = 6;
  std::vector<std::vector<TokenId>> prompts;
  std::vector<int> sessions;
  for (int len : lens) {
    prompts.push_back(make_prompt(rng, spec_, len));
    sessions.push_back(engine_.begin_session(prompts.back()));
  }
  std::vector<std::vector<TokenId>> got(prompts.size());
  std::vector<TokenId> toks = engine_.prefill(sessions);
  for (std::size_t i = 0; i < toks.size(); ++i) got[i].push_back(toks[i]);
  for (int step = 1; step < gen; ++step) {
    toks = engine_.decode_step(sessions);
    for (std::size_t i = 0; i < toks.size(); ++i) got[i].push_back(toks[i]);
  }
  for (std::size_t i = 0; i < prompts.size(); ++i)
    EXPECT_EQ(got[i], reference_one(prompts[i], gen)) << "request " << i;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ(engine_.session_length(sessions[i]),
              prompts[i].size() + static_cast<std::size_t>(gen));
    engine_.end_session(sessions[i]);
    EXPECT_FALSE(engine_.has_session(sessions[i]));
  }
}

TEST_F(SessionEngineTest, SessionsJoinMidStreamWithKvReuse) {
  // Continuous batching shape: one session decodes alone, a second joins
  // later, and both keep matching their unbatched references — the first
  // session's KV survives across every call.
  Rng rng(7);
  const auto p0 = make_prompt(rng, spec_, 9);
  const auto p1 = make_prompt(rng, spec_, 13);
  const auto ref0 = reference_one(p0, 5);
  const auto ref1 = reference_one(p1, 3);

  const int s0 = engine_.begin_session(p0);
  std::vector<TokenId> got0{engine_.prefill({s0})[0]};
  got0.push_back(engine_.decode_step({s0})[0]);

  const int s1 = engine_.begin_session(p1);
  std::vector<TokenId> got1{engine_.prefill({s1})[0]};
  for (int step = 0; step < 2; ++step) {
    const auto toks = engine_.decode_step({s0, s1});
    got0.push_back(toks[0]);
    got1.push_back(toks[1]);
  }
  got0.push_back(engine_.decode_step({s0})[0]);

  EXPECT_EQ(got0, ref0);
  EXPECT_EQ(got1, ref1);
  engine_.end_session(s0);
  engine_.end_session(s1);
}

TEST_F(SessionEngineTest, SessionMisuseIsRejected) {
  EXPECT_THROW(engine_.begin_session({}), InvalidArgumentError);
  Rng rng(3);
  const int s = engine_.begin_session(make_prompt(rng, spec_, 6));
  EXPECT_THROW(engine_.decode_step({s}), InvalidArgumentError);  // no prefill
  EXPECT_THROW(engine_.prefill({}), InvalidArgumentError);       // empty call
  (void)engine_.prefill({s});
  EXPECT_THROW(engine_.prefill({s}), InvalidArgumentError);  // already done
  EXPECT_EQ(engine_.session_committed(s), 6u);
  EXPECT_EQ(engine_.session_length(s), 7u);
  engine_.end_session(s);
  EXPECT_THROW(engine_.end_session(s), InvalidArgumentError);
  EXPECT_THROW(engine_.decode_step({s}), InvalidArgumentError);  // unknown
}

TEST_F(SessionEngineTest, KvFootprintGrowsThenPoolsPages) {
  const std::size_t before = engine_.kv_footprint_bytes();
  Rng rng(5);
  const int s = engine_.begin_session(make_prompt(rng, spec_, 12));
  (void)engine_.prefill({s});
  const std::size_t during = engine_.kv_footprint_bytes();
  EXPECT_GT(during, before);
  engine_.end_session(s);
  // Pages return to the pool, not the OS: footprint is monotonic.
  EXPECT_EQ(engine_.kv_footprint_bytes(), during);
}

// ---------------------------------------------------------------------------
// Serving regression: mixed-length batches, session vs replay execution.
// ---------------------------------------------------------------------------

class MixedLengthServeTest : public SessionEngineTest {
 protected:
  /// A burst of mixed-length requests (the shape the paper's ShareGPT
  /// workload produces) plus each request's unbatched greedy continuation.
  void build_trace() {
    Rng rng(29);
    const int lens[] = {4, 10, 16};
    for (int len : lens) {
      OnlineTraceRequest t;
      t.prompt = make_prompt(rng, spec_, len);
      t.gen_tokens = 6;
      reference_.push_back(reference_one(t.prompt, t.gen_tokens));
      trace_.push_back(std::move(t));
    }
  }

  OnlineReport serve(SchedulerPolicy policy, DecodeExec exec) {
    OnlineEngineOptions opt;
    opt.scheduler.policy = policy;
    opt.scheduler.exec = exec;
    opt.scheduler.batch_size = 3;
    opt.scheduler.max_batch = 3;
    return serve_trace(engine_, trace_, opt);
  }

  std::vector<OnlineTraceRequest> trace_;
  std::vector<std::vector<TokenId>> reference_;
};

TEST_F(MixedLengthServeTest, SessionDecodeIsExactForMixedLengths) {
  build_trace();
  for (SchedulerPolicy policy : {SchedulerPolicy::kStaticBatching,
                                 SchedulerPolicy::kIterationLevel}) {
    const OnlineReport rep = serve(policy, DecodeExec::kSession);
    EXPECT_EQ(rep.completed, 3);
    ASSERT_EQ(rep.generated.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_EQ(rep.generated[i], reference_[i])
          << scheduler_policy_name(policy) << " request " << i;
  }
}

TEST_F(MixedLengthServeTest, ReplayDecodeDivergesOnMixedLengths) {
  // The bug the session path fixes, pinned so it cannot silently return:
  // replay execution left-pads shorter rows and attends to the pad
  // positions, so at least one mixed-length request must diverge from its
  // unbatched continuation. If this test ever fails, padded attention
  // became exact and the replay baseline should be retired.
  build_trace();
  const OnlineReport rep =
      serve(SchedulerPolicy::kIterationLevel, DecodeExec::kReplay);
  EXPECT_EQ(rep.completed, 3);
  ASSERT_EQ(rep.generated.size(), 3u);
  bool any_diverged = false;
  for (std::size_t i = 0; i < 3; ++i)
    any_diverged = any_diverged || rep.generated[i] != reference_[i];
  EXPECT_TRUE(any_diverged);
}

TEST_F(MixedLengthServeTest, EmptyPromptRejectedAtTheBoundary) {
  // Zero-length prompts have no last token to sample: both entry points
  // reject them up front with InvalidArgumentError instead of failing
  // mid-dispatch.
  OnlineTraceRequest bad;
  bad.gen_tokens = 2;
  EXPECT_THROW(serve_trace(engine_, {bad}, OnlineEngineOptions{}),
               InvalidArgumentError);
  OnlineEngineOptions opt;
  OnlineEngine server(engine_, opt);
  EXPECT_THROW(server.submit({}, 2), InvalidArgumentError);
  server.close();
  const OnlineReport rep = server.wait();
  EXPECT_EQ(rep.completed, 0);
}

}  // namespace
}  // namespace llmpq
