#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "hw/cluster.hpp"
#include "hw/gpu_spec.hpp"
#include "hw/trace.hpp"
#include "model/flops.hpp"
#include "model/model_spec.hpp"

namespace llmpq {
namespace {

TEST(ModelSpec, RegistryLookup) {
  const ModelSpec& m = model_registry_get("opt-30b");
  EXPECT_EQ(m.hidden, 7168);
  EXPECT_EQ(m.layers, 48);
  EXPECT_EQ(m.family, "opt");
  EXPECT_THROW(model_registry_get("gpt-5"), InvalidArgumentError);
  EXPECT_GE(model_registry_names().size(), 10u);
}

TEST(ModelSpec, ParameterCountsMatchNominalSizes) {
  // Each model's parameter count should be within ~15% of its nameplate.
  const struct {
    const char* name;
    double billions;
  } cases[] = {{"opt-1.3b", 1.3}, {"opt-13b", 13},   {"opt-30b", 30},
               {"opt-66b", 66},   {"opt-175b", 175}, {"bloom-176b", 176}};
  for (const auto& c : cases) {
    const double params =
        static_cast<double>(model_registry_get(c.name).total_params()) / 1e9;
    EXPECT_GT(params, c.billions * 0.85) << c.name;
    EXPECT_LT(params, c.billions * 1.2) << c.name;
  }
}

TEST(ModelSpec, LlamaEntriesUseGatedMlp) {
  const ModelSpec& m = model_registry_get("llama-7b");
  EXPECT_TRUE(m.gated_mlp);
  EXPECT_EQ(m.layer_linear_ops().size(), 5u);
  EXPECT_EQ(m.ffn, 11008);
  // Published LLaMA sizes within ~10% of nameplate.
  const struct {
    const char* name;
    double billions;
  } cases[] = {{"llama-7b", 6.7}, {"llama-13b", 13.0},
               {"llama-30b", 32.5}, {"llama-65b", 65.2}};
  for (const auto& c : cases) {
    const double params =
        static_cast<double>(model_registry_get(c.name).total_params()) / 1e9;
    EXPECT_NEAR(params / c.billions, 1.0, 0.12) << c.name;
  }
  // OPT entries are unaffected by the gated-MLP refactor.
  EXPECT_EQ(model_registry_get("opt-13b").layer_linear_ops().size(), 4u);
}

TEST(ModelSpec, LinearOpsCoverLayerParams) {
  const ModelSpec& m = model_registry_get("opt-13b");
  std::int64_t linear = 0;
  for (const auto& op : m.layer_linear_ops()) linear += op.weight_params();
  // Linears dominate the layer (> 99% of parameters).
  EXPECT_GT(static_cast<double>(linear),
            0.99 * static_cast<double>(m.layer_params()));
}

TEST(Flops, PrefillIsComputeBoundDecodeIsMemoryBound) {
  // Paper Sec 4.1: OPT-30b at batch 32, s=512: prefill intensity in the
  // thousands, decode intensity in the tens.
  const ModelSpec& m = model_registry_get("opt-30b");
  const double pre =
      layer_arithmetic_intensity(m, prefill_shape(32, 512), 2.0);
  const double dec =
      layer_arithmetic_intensity(m, decode_shape(32, 512), 2.0);
  EXPECT_GT(pre, 1000.0);
  EXPECT_LT(dec, 100.0);
  EXPECT_GT(dec, 5.0);
}

TEST(Flops, ScalesLinearlyInBatch) {
  const ModelSpec& m = model_registry_get("opt-13b");
  const double f1 = layer_flops(m, prefill_shape(1, 256));
  const double f4 = layer_flops(m, prefill_shape(4, 256));
  EXPECT_NEAR(f4 / f1, 4.0, 1e-9);
}

TEST(Flops, DecodeFlopsGrowWithContext) {
  const ModelSpec& m = model_registry_get("opt-13b");
  EXPECT_GT(layer_flops(m, decode_shape(8, 1024)),
            layer_flops(m, decode_shape(8, 128)));
}

TEST(GpuSpec, RegistryAndBitProfiles) {
  const GpuSpec& t4 = gpu_registry_get("T4-16G");
  EXPECT_EQ(t4.mem_bytes, gb_marketing(16));
  EXPECT_THROW(gpu_registry_get("H100"), InvalidArgumentError);
  EXPECT_EQ(gpu_registry_names().size(), 5u);
  // T4 INT8 tensor cores: 8-bit compute throughput above FP16.
  EXPECT_GT(t4.effective_flops(8), t4.effective_flops(16));
  // V100 has no INT8 cores: slower in compute AND effective bandwidth.
  const GpuSpec& v100 = gpu_registry_get("V100-32G");
  EXPECT_LT(v100.effective_flops(8), v100.effective_flops(16));
  EXPECT_LT(v100.effective_bandwidth(8), v100.effective_bandwidth(16));
}

TEST(GpuSpec, BytesPerParam) {
  EXPECT_DOUBLE_EQ(bytes_per_param(16), 2.0);
  EXPECT_DOUBLE_EQ(bytes_per_param(8), 1.0);
  EXPECT_DOUBLE_EQ(bytes_per_param(4), 0.5);
  EXPECT_DOUBLE_EQ(bytes_per_param(3), 0.375);
  EXPECT_THROW(bytes_per_param(5), InvalidArgumentError);
  EXPECT_EQ(bit_index(3), 0);
  EXPECT_EQ(bit_index(16), 3);
  EXPECT_EQ(bit_index(7), -1);
}

TEST(Cluster, LinksDependOnNodeMembership) {
  const ClusterSpec c =
      make_cluster("t", {{"T4-16G", 2}, {"V100-32G", 1}}, 100);
  EXPECT_EQ(c.num_devices(), 3);
  // Devices 0,1 share a node (NVLink); 2 is on another node (Ethernet).
  EXPECT_GT(c.link(0, 1).bytes_per_s, c.link(1, 2).bytes_per_s);
  EXPECT_EQ(c.describe_devices(), "2xT4-16G + 1xV100-32G");
  EXPECT_FALSE(c.homogeneous());
}

TEST(Cluster, TransferTimeIncludesLatency) {
  const LinkSpec link{gbps(100), us(30)};
  EXPECT_NEAR(link.transfer_time(0), us(30), 1e-12);
  EXPECT_GT(link.transfer_time(1e9), 1e9 / gbps(100));
}

TEST(Cluster, PaperClustersMatchTable3) {
  // Spot-check the Table 3 configurations.
  EXPECT_EQ(paper_cluster(1).cluster.num_devices(), 1);
  EXPECT_EQ(paper_cluster(1).model_name, "opt-13b");
  EXPECT_EQ(paper_cluster(3).cluster.describe_devices(),
            "3xT4-16G + 1xV100-32G");
  EXPECT_EQ(paper_cluster(5).cluster.num_devices(), 6);
  EXPECT_EQ(paper_cluster(5).model_name, "opt-66b");
  EXPECT_EQ(paper_cluster(8).cluster.describe_devices(),
            "4xV100-32G + 2xA800-80G");
  EXPECT_TRUE(paper_cluster(9).cluster.homogeneous());
  EXPECT_EQ(paper_cluster(11).model_name, "bloom-176b");
  EXPECT_THROW(paper_cluster(0), InvalidArgumentError);
  EXPECT_THROW(paper_cluster(12), InvalidArgumentError);
}

TEST(Cluster, ModelSizedToClusterMemory) {
  // Table 3's rule: the non-quantized model roughly matches total memory.
  for (int k = 3; k <= 8; ++k) {
    const PaperCluster pc = paper_cluster(k);
    const double weight_gb =
        2.0 *
        static_cast<double>(model_registry_get(pc.model_name).total_params()) /
        1e9;
    const double mem_gb =
        static_cast<double>(pc.cluster.total_mem_bytes()) / 1e9;
    EXPECT_GT(weight_gb, 0.4 * mem_gb) << "cluster " << k;
    EXPECT_LT(weight_gb, 2.5 * mem_gb) << "cluster " << k;
  }
}

TEST(Trace, SharesSumToOneAndShapeHolds) {
  Rng rng(5);
  const ClusterTrace trace = generate_cluster_trace(rng);
  double total = 0.0;
  for (const auto& s : trace.shares) total += s.fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);

  const auto avg = average_utilization(trace);
  double t4_share = 0, a100_share = 0, t4_util = 0, a100_util = 0;
  for (const auto& s : avg) {
    if (s.gpu_name == "T4-16G") {
      t4_share = 0.46;
      t4_util = s.mean_utilization;
    }
    if (s.gpu_name == "A100-40G") {
      a100_share = 0.08;
      a100_util = s.mean_utilization;
    }
  }
  // Fig 1 shape: T4s dominate the fleet but idle; A100s scarce but busy.
  EXPECT_GT(t4_share, a100_share);
  EXPECT_GT(a100_util, 2.0 * t4_util);
  EXPECT_EQ(trace.samples.size(), trace.shares.size() * 30);
}

TEST(Trace, DeterministicPerSeed) {
  Rng a(9), b(9);
  const auto ta = generate_cluster_trace(a);
  const auto tb = generate_cluster_trace(b);
  ASSERT_EQ(ta.samples.size(), tb.samples.size());
  for (std::size_t i = 0; i < ta.samples.size(); ++i)
    EXPECT_DOUBLE_EQ(ta.samples[i].util, tb.samples[i].util);
}

}  // namespace
}  // namespace llmpq
