#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "runtime/engine.hpp"
#include "runtime/kv_cache_manager.hpp"
#include "runtime/transformer.hpp"
#include "serve/capacity_scheduler.hpp"
#include "serve/online_engine.hpp"
#include "sim/online_sim.hpp"

namespace llmpq {
namespace {

// ---------------------------------------------------------------------------
// CapacityScheduler: the pure admission/preemption arithmetic.
// ---------------------------------------------------------------------------

CapacitySeq cs(int id, int context) { return CapacitySeq{id, context}; }

TEST(CapacityScheduler, UnboundedBudgetsAdmitUpToMaxBatch) {
  CapacityOptions opt;
  opt.max_batch = 3;
  const CapacityScheduler cap(opt);
  const CapacityPlan plan = cap.plan_round(
      {cs(0, 9), cs(1, 12)}, {cs(2, 8), cs(3, 8), cs(4, 8)});
  EXPECT_EQ(plan.admit, std::vector<int>{2});  // 2 running + 1 join = 3
  EXPECT_TRUE(plan.preempt.empty());
}

TEST(CapacityScheduler, TokenBudgetChargesJoinsTheirFullContext) {
  // 2 decode rows cost 1 token each; budget 20 leaves 18 for joins. The
  // first join (context 10) fits, the second (context 9 > 8 left) does
  // not — and admission stops at the first non-fit (FIFO, no skipping).
  CapacityOptions opt;
  opt.max_batch = 16;
  opt.token_budget = 20;
  const CapacityScheduler cap(opt);
  const CapacityPlan plan = cap.plan_round(
      {cs(0, 30), cs(1, 30)}, {cs(2, 10), cs(3, 9), cs(4, 1)});
  EXPECT_EQ(plan.admit, std::vector<int>{2});
  EXPECT_TRUE(plan.preempt.empty());
}

TEST(CapacityScheduler, PageLedgerPreemptsNewestFirstAndKeepsOne) {
  // page_size 4, cap 8 pages. Running contexts 15/15/15 each need
  // pages_for(16) = 4 pages -> 12 > 8: evicting the newest (id 2) gets
  // back under the cap, so exactly one victim; a cap of 4 claims the two
  // newest and never the last survivor.
  CapacityOptions opt;
  opt.max_batch = 16;
  opt.kv_page_size = 4;
  opt.kv_pages = 8;
  const CapacityScheduler cap(opt);
  const CapacityPlan plan =
      cap.plan_round({cs(0, 15), cs(1, 15), cs(2, 15)}, {});
  EXPECT_EQ(plan.preempt, std::vector<int>{2});
  EXPECT_TRUE(plan.admit.empty());

  CapacityOptions tight = opt;
  tight.kv_pages = 4;
  const CapacityPlan two =
      CapacityScheduler(tight).plan_round({cs(0, 15), cs(1, 15), cs(2, 15)},
                                          {});
  EXPECT_EQ(two.preempt, (std::vector<int>{2, 1}));

  // Even a single over-cap sequence survives: the batch must progress.
  const CapacityPlan lone = cap.plan_round({cs(0, 1000)}, {});
  EXPECT_TRUE(lone.preempt.empty());
}

TEST(CapacityScheduler, AdmissionRespectsThePageLedger) {
  // Cap 8 pages (page_size 4). One running row at context 7 uses
  // pages_for(8) = 2; a join of context 20 needs pages_for(21) = 6 ->
  // fits exactly; the next join of context 4 needs 2 more -> rejected.
  CapacityOptions opt;
  opt.max_batch = 16;
  opt.kv_page_size = 4;
  opt.kv_pages = 8;
  const CapacityScheduler cap(opt);
  const CapacityPlan plan =
      cap.plan_round({cs(0, 7)}, {cs(1, 20), cs(2, 4)});
  EXPECT_EQ(plan.admit, std::vector<int>{1});
  EXPECT_TRUE(plan.preempt.empty());
}

TEST(CapacityScheduler, IdleBatchForceAdmitsAnOversizedHead) {
  // A request bigger than every budget must still run once the batch is
  // idle, or the scheduler wedges forever.
  CapacityOptions opt;
  opt.max_batch = 4;
  opt.token_budget = 8;
  opt.kv_page_size = 4;
  opt.kv_pages = 2;
  const CapacityScheduler cap(opt);
  const CapacityPlan plan = cap.plan_round({}, {cs(7, 100)});
  EXPECT_EQ(plan.admit, std::vector<int>{7});
  // ...but never while something is running (it will fit later).
  const CapacityPlan busy = cap.plan_round({cs(0, 3)}, {cs(7, 100)});
  EXPECT_TRUE(busy.admit.empty());
}

// ---------------------------------------------------------------------------
// KvCacheManager::preempt(): the page-release primitive under the batch.
// ---------------------------------------------------------------------------

TEST(KvCacheManagerPreempt, SnapshotsCommittedLengthAndReleasesPages) {
  KvCacheManagerOptions opt;
  opt.page_size = 4;
  KvCacheManager m(8, opt);
  m.begin_seq(1);
  m.pin(1);  // engine sessions are pinned; preempt must ignore pins
  m.reserve(1, 10);
  std::vector<float> v(8, 1.0f);
  for (int i = 0; i < 10; ++i) m.append(1, v.data(), v.data());
  const std::size_t pool = m.pool_pages();
  EXPECT_EQ(m.free_pages(), pool - 3);  // pages_for(10, 4) = 3

  EXPECT_EQ(m.preempt(1), 10u);
  EXPECT_EQ(m.filled(1), 0u);
  EXPECT_EQ(m.free_pages(), pool);       // every page back on the free list
  EXPECT_EQ(m.pool_pages(), pool);       // footprint monotonic, no shrink
  EXPECT_EQ(m.preempted_len(1), 10u);    // the re-prefill target
  EXPECT_EQ(m.preemptions(), 1);
  EXPECT_EQ(m.evictions(), 0);  // voluntary preemption is not an eviction
}

TEST(KvCacheManagerPreempt, DoublePreemptIsRejected) {
  KvCacheManager m(8, {});
  m.begin_seq(1);
  m.reserve(1, 4);
  std::vector<float> v(8, 0.5f);
  m.append(1, v.data(), v.data());
  m.preempt(1);
  EXPECT_THROW(m.preempt(1), InvalidArgumentError);   // double-preempt
  m.begin_seq(2);
  EXPECT_THROW(m.preempt(2), InvalidArgumentError);   // never filled
  EXPECT_THROW(m.preempt(99), InvalidArgumentError);  // unknown id
}

TEST(KvCacheManagerPreempt, ReserveConsumesTheSnapshot) {
  KvCacheManagerOptions opt;
  opt.page_size = 4;
  KvCacheManager m(8, opt);
  m.begin_seq(1);
  m.reserve(1, 6);
  std::vector<float> v(8, 2.0f);
  for (int i = 0; i < 6; ++i) m.append(1, v.data(), v.data());
  m.preempt(1);
  EXPECT_EQ(m.preempted_len(1), 6u);
  m.reserve(1, 6);  // the resume re-prefill regrows the sequence
  EXPECT_EQ(m.preempted_len(1), 0u);
  EXPECT_EQ(m.filled(1), 0u);  // filled restarts; append refills exactly
}

// ---------------------------------------------------------------------------
// Engine-level preempt/resume: bit-exact continuation via re-prefill.
// ---------------------------------------------------------------------------

ModelSpec tiny_spec() {
  ModelSpec m;
  m.name = "tiny-continuous";
  m.family = "opt";
  m.hidden = 32;
  m.ffn = 128;
  m.heads = 4;
  m.layers = 6;
  m.vocab = 96;
  m.max_pos = 64;
  return m;
}

std::vector<TokenId> make_prompt(Rng& rng, const ModelSpec& m, int len) {
  std::vector<TokenId> p;
  for (int t = 0; t < len; ++t)
    p.push_back(static_cast<TokenId>(rng.uniform_int(0, m.vocab - 1)));
  return p;
}

class ContinuousEngineTest : public ::testing::Test {
 protected:
  ContinuousEngineTest()
      : spec_(tiny_spec()),
        weights_(build_random_model(
            spec_, std::vector<int>(static_cast<std::size_t>(spec_.layers), 8),
            2024)),
        engine_(weights_, {{0, 3}, {3, 6}}, 2, 2) {}
  ModelSpec spec_;
  ModelWeights weights_;
  PipelineEngine engine_;
};

TEST_F(ContinuousEngineTest, PreemptedSessionResumesBitExactly) {
  Rng rng(7);
  const std::vector<TokenId> prompt = make_prompt(rng, spec_, 8);
  const auto reference = reference_generate(weights_, {prompt}, 6)[0];

  const int sid = engine_.begin_session(prompt);
  std::vector<TokenId> got;
  got.push_back(engine_.prefill({sid})[0]);
  got.push_back(engine_.decode_step({sid})[0]);
  got.push_back(engine_.decode_step({sid})[0]);

  // Preempt mid-generation: pages released, tokens and length kept.
  const std::size_t committed = engine_.session_committed(sid);
  EXPECT_GT(committed, 0u);
  EXPECT_EQ(engine_.preempt_session(sid), committed);
  EXPECT_EQ(engine_.session_committed(sid), 0u);
  EXPECT_EQ(engine_.session_length(sid), prompt.size() + got.size());
  // Idempotent while parked: nothing further to release.
  EXPECT_EQ(engine_.preempt_session(sid), 0u);

  // Resume is exactly prefill() over the full history; greedy sampling
  // makes the continuation bit-identical to the uninterrupted run.
  got.push_back(engine_.prefill({sid})[0]);
  got.push_back(engine_.decode_step({sid})[0]);
  got.push_back(engine_.decode_step({sid})[0]);
  engine_.end_session(sid);
  EXPECT_EQ(got, reference);
}

// ---------------------------------------------------------------------------
// ServeScheduler in kContinuous mode: decision shapes, ride-along joins,
// preemption bookkeeping, conservation. Pure logic, explicit clocks.
// ---------------------------------------------------------------------------

ServeRequest req(int id, double arrival, int prompt, int gen) {
  ServeRequest r;
  r.id = id;
  r.arrival_s = arrival;
  r.prompt_len = prompt;
  r.gen_tokens = gen;
  return r;
}

SchedulerOptions continuous_options() {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kIterationLevel;
  opt.exec = DecodeExec::kContinuous;
  return opt;
}

TEST(ContinuousScheduler, RequiresIterationLevelPolicy) {
  SchedulerOptions opt;
  opt.policy = SchedulerPolicy::kStaticBatching;
  opt.exec = DecodeExec::kContinuous;
  EXPECT_THROW(ServeScheduler s(opt), InvalidArgumentError);
}

TEST(ContinuousScheduler, LateArrivalJoinsTheRunningDecodeRound) {
  SchedulerOptions opt = continuous_options();
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 8, 4));
  s.submit(req(1, 1.0, 6, 2));
  s.close();

  // t=0: request 0 joins an empty batch — a pure-join (prefill) round.
  SchedulerAction a = s.next(0.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.phase, ServePhase::kPrefillPass);
  EXPECT_EQ(a.decision.request_ids, std::vector<int>{0});
  EXPECT_EQ(a.decision.num_join, 1);
  s.complete(a.decision, 0.5);

  // t=2: request 1 has arrived — it joins request 0's decode round, its
  // prefill riding along: continuing rows lead, joins trail.
  a = s.next(2.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.phase, ServePhase::kDecodePass);
  EXPECT_EQ(a.decision.request_ids, (std::vector<int>{0, 1}));
  EXPECT_EQ(a.decision.contexts, (std::vector<int>{9, 6}));
  EXPECT_EQ(a.decision.num_join, 1);
  EXPECT_EQ(a.decision.max_context, 9);
  EXPECT_EQ(a.decision.padded_prompt, 6);
  s.complete(a.decision, 2.5);

  // Both advance each round; request 1 (gen 2) leaves after one more.
  a = s.next(2.5);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.request_ids, (std::vector<int>{0, 1}));
  EXPECT_EQ(a.decision.num_join, 0);
  s.complete(a.decision, 3.0);
  a = s.next(3.0);
  ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch);
  EXPECT_EQ(a.decision.request_ids, std::vector<int>{0});  // 1 retired
  s.complete(a.decision, 3.5);  // request 0's 4th and last token
  EXPECT_EQ(s.next(3.5).kind, SchedulerAction::Kind::kDone);

  const OutcomeCounts oc = s.outcomes();
  EXPECT_EQ(oc.completed, 2);
  EXPECT_EQ(s.preemptions(), 0);
}

TEST(ContinuousScheduler, MemoryPressurePreemptsNewestAndResumesFifo) {
  // page_size 4, 6 pages: two contexts of 9+ tokens need 3 pages each and
  // fit, but after two rounds the older sequence crosses a page boundary
  // and the ledger overflows — the NEWEST request is evicted to pending
  // and re-admitted (full-context re-prefill) once the survivor retires.
  SchedulerOptions opt = continuous_options();
  opt.kv_page_size = 4;
  opt.kv_pages = 6;
  ServeScheduler s(opt);
  s.submit(req(0, 0.0, 10, 8));
  s.submit(req(1, 0.0, 9, 8));
  s.close();

  double t = 0.0;
  bool saw_preempt = false, saw_resume = false;
  std::vector<int> preempted_ids;
  for (int guard = 0;; ++guard) {
    ASSERT_LT(guard, 200) << "scheduler failed to converge";
    SchedulerAction a = s.next(t);
    if (a.kind == SchedulerAction::Kind::kDone) break;
    if (a.kind == SchedulerAction::Kind::kWait) {
      t = a.wait_until;
      continue;
    }
    ASSERT_EQ(a.kind, SchedulerAction::Kind::kDispatch) << "t=" << t;
    const DispatchDecision& d = a.decision;
    if (!d.preempted.empty()) {
      saw_preempt = true;
      preempted_ids.insert(preempted_ids.end(), d.preempted.begin(),
                           d.preempted.end());
    }
    // A resumed join re-prefills more than its prompt: context > prompt.
    for (std::size_t i = d.request_ids.size() -
                          static_cast<std::size_t>(d.num_join);
         i < d.request_ids.size(); ++i) {
      if (d.request_ids[i] == 1 && d.contexts[i] > 9) saw_resume = true;
    }
    t += 0.25;
    s.complete(d, t);
  }
  EXPECT_TRUE(saw_preempt);
  EXPECT_TRUE(saw_resume);
  EXPECT_GE(s.preemptions(), 1);
  // Newest-first: request 1 (later id, same arrival) is the victim.
  for (int id : preempted_ids) EXPECT_EQ(id, 1);
  const OutcomeCounts oc = s.outcomes();
  EXPECT_EQ(oc.completed, 2);  // both still finish, exactly once
  EXPECT_EQ(s.finished().size(), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end fidelity: every continuous request matches its unbatched
// greedy reference bit-for-bit, with and without forced preemption.
// ---------------------------------------------------------------------------

TEST_F(ContinuousEngineTest, ContinuousDecodeMatchesUnbatchedReference) {
  // Staggered arrivals force mid-flight joins; mixed prompt/gen lengths
  // force ragged rounds and early retirement.
  const int prompt_lens[] = {6, 9, 12, 7, 10};
  const int gens[] = {6, 4, 8, 5, 3};
  const double arrivals[] = {0.0, 0.0, 0.01, 0.02, 0.03};
  Rng rng(23);
  std::vector<OnlineTraceRequest> trace;
  std::vector<std::vector<TokenId>> references;
  for (int i = 0; i < 5; ++i) {
    OnlineTraceRequest tr;
    tr.arrival_s = arrivals[i];
    tr.prompt = make_prompt(rng, spec_, prompt_lens[i]);
    tr.gen_tokens = gens[i];
    references.push_back(
        reference_generate(weights_, {tr.prompt}, gens[i])[0]);
    trace.push_back(std::move(tr));
  }

  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.exec = DecodeExec::kContinuous;
  opt.scheduler.max_batch = 4;
  const OnlineReport rep = serve_trace(engine_, trace, opt);
  EXPECT_EQ(rep.completed, 5);
  ASSERT_EQ(rep.generated.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(rep.generated[i], references[i]) << "request " << i;
}

TEST_F(ContinuousEngineTest, ForcedPreemptionKeepsOutputsBitExact) {
  // A page ledger tight enough to preempt mid-generation: outputs must
  // still match the unbatched reference (evict -> re-prefill -> continue).
  const int prompt_lens[] = {10, 9, 8};
  const int gens[] = {8, 8, 8};
  Rng rng(29);
  std::vector<OnlineTraceRequest> trace;
  std::vector<std::vector<TokenId>> references;
  for (int i = 0; i < 3; ++i) {
    OnlineTraceRequest tr;
    tr.prompt = make_prompt(rng, spec_, prompt_lens[i]);
    tr.gen_tokens = gens[i];
    references.push_back(
        reference_generate(weights_, {tr.prompt}, gens[i])[0]);
    trace.push_back(std::move(tr));
  }

  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.exec = DecodeExec::kContinuous;
  opt.scheduler.kv_page_size = 4;
  opt.scheduler.kv_pages = 8;  // 3 growing sequences cannot all fit
  const OnlineReport rep = serve_trace(engine_, trace, opt);
  EXPECT_EQ(rep.completed, 3);
  EXPECT_GE(rep.preemptions, 1) << "ledger was meant to force preemption";
  ASSERT_EQ(rep.generated.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(rep.generated[i], references[i]) << "request " << i;
}

// ---------------------------------------------------------------------------
// Sim-vs-runtime parity for kContinuous: identical decision logs, including
// join composition and preemption victims.
// ---------------------------------------------------------------------------

TEST_F(ContinuousEngineTest, SimAndRuntimeMakeIdenticalContinuousDecisions) {
  const auto pc = paper_cluster(3);
  const ModelSpec& sim_model = model_registry_get(pc.model_name);
  CostProvider cost(sim_model, pc.cluster, CostMode::kProfiled);
  const ExecutionPlan plan = pipeedge_plan(cost);

  const int prompt_lens[] = {6, 9, 12, 15, 18, 21};
  const int gens[] = {4, 5, 6, 7, 8, 9};
  Rng rng(17);
  std::vector<OnlineRequest> sim_reqs;
  std::vector<OnlineTraceRequest> rt_trace;
  for (int i = 0; i < 6; ++i) {
    OnlineRequest sr;
    sr.arrival_s = 0.0;  // burst: decisions are duration-independent
    sr.prompt_len = prompt_lens[i];
    sr.gen_tokens = gens[i];
    sim_reqs.push_back(sr);
    OnlineTraceRequest tr;
    tr.arrival_s = 0.0;
    tr.prompt = make_prompt(rng, spec_, prompt_lens[i]);
    tr.gen_tokens = gens[i];
    rt_trace.push_back(std::move(tr));
  }

  // Budgets tight enough that the capacity planner actually decides
  // something: joins are rationed by tokens and pages, and growth forces
  // at least one preemption — all of which must replay identically.
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.exec = DecodeExec::kContinuous;
  opt.scheduler.max_batch = 4;
  opt.scheduler.token_budget = 24;
  opt.scheduler.kv_page_size = 4;
  opt.scheduler.kv_pages = 16;

  const OnlineSimResult sim =
      simulate_online(sim_model, pc.cluster, plan, sim_reqs, opt.scheduler);
  ASSERT_TRUE(sim.ok) << sim.error;
  const OnlineReport rt = serve_trace(engine_, rt_trace, opt);
  EXPECT_EQ(sim.completed, rt.completed);
  EXPECT_EQ(sim.preemptions, rt.preemptions);
  ASSERT_EQ(sim.decisions.size(), rt.decisions.size());
  for (std::size_t i = 0; i < sim.decisions.size(); ++i) {
    SCOPED_TRACE("decision " + std::to_string(i));
    EXPECT_EQ(sim.decisions[i].seq, rt.decisions[i].seq);
    EXPECT_EQ(sim.decisions[i].phase, rt.decisions[i].phase);
    EXPECT_EQ(sim.decisions[i].request_ids, rt.decisions[i].request_ids);
    EXPECT_EQ(sim.decisions[i].contexts, rt.decisions[i].contexts);
    EXPECT_EQ(sim.decisions[i].padded_prompt, rt.decisions[i].padded_prompt);
    EXPECT_EQ(sim.decisions[i].max_context, rt.decisions[i].max_context);
    EXPECT_EQ(sim.decisions[i].num_join, rt.decisions[i].num_join);
    EXPECT_EQ(sim.decisions[i].preempted, rt.decisions[i].preempted);
    EXPECT_EQ(sim.decisions[i].tenants, rt.decisions[i].tenants);
    EXPECT_EQ(sim.decisions[i].classes, rt.decisions[i].classes);
    EXPECT_EQ(sim.decisions[i].forced_joins, rt.decisions[i].forced_joins);
  }
}

// ---------------------------------------------------------------------------
// Fault injection: join/leave/preempt-resume under chaos, conservation.
// ---------------------------------------------------------------------------

FaultRule rule(const std::string& site, FaultKind kind, double prob,
               int max_fires = std::numeric_limits<int>::max(),
               double delay_ms = 0.0) {
  FaultRule r;
  r.site = site;
  r.kind = kind;
  r.probability = prob;
  r.max_fires = max_fires;
  r.delay_ms = delay_ms;
  return r;
}

/// RAII arm/disarm so a failing assertion cannot leak an armed plan into
/// the next test.
struct ArmedPlan {
  explicit ArmedPlan(const FaultPlan& plan) {
    FaultInjector::instance().arm(plan);
  }
  ~ArmedPlan() { FaultInjector::instance().disarm(); }
};

TEST_F(ContinuousEngineTest, DispatchFaultsRetryJoinsWithoutLoss) {
  // serve.dispatch throws fail whole rounds (joins and continuing rows
  // alike); the scheduler must retry joins from the resume queue and every
  // request must still complete with real output.
  FaultPlan plan;
  plan.rules.push_back(rule("serve.dispatch", FaultKind::kThrow, 1.0, 2));
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.exec = DecodeExec::kContinuous;
  opt.scheduler.max_retries = 4;
  opt.scheduler.retry_backoff_s = 0.001;
  Rng rng(31);
  std::vector<OnlineTraceRequest> trace;
  for (int i = 0; i < 3; ++i) {
    OnlineTraceRequest t;
    t.prompt = make_prompt(rng, spec_, 8);
    t.gen_tokens = 3;
    trace.push_back(std::move(t));
  }
  ArmedPlan armed(plan);
  const OnlineReport rep = serve_trace(engine_, trace, opt);
  EXPECT_EQ(rep.completed, 3);
  EXPECT_EQ(rep.failed, 0);
  EXPECT_GE(rep.retries, 1);
  for (const auto& g : rep.generated) EXPECT_EQ(g.size(), 3u);
}

/// Nightly-CI failure artifact: the failing seed's fault plan and outcome
/// tallies, enough to reproduce the run offline (mirrors test_fault.cpp).
void dump_chaos_artifact(const std::string& test, std::uint64_t seed,
                         const FaultPlan& plan, const OnlineReport& rep) {
  const char* dir = std::getenv("LLMPQ_CHAOS_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::ostringstream path;
  path << dir << "/" << test << "_seed" << seed << ".json";
  std::ofstream out(path.str());
  out << "{\n  \"test\": \"" << test << "\",\n  \"seed\": " << seed
      << ",\n  \"fault_plan\": " << plan.to_json()
      << ",\n  \"outcomes\": {\"completed\": " << rep.completed
      << ", \"timed_out\": " << rep.timed_out
      << ", \"rejected\": " << rep.rejected << ", \"failed\": " << rep.failed
      << ", \"retries\": " << rep.retries
      << ", \"preemptions\": " << rep.preemptions << "}\n}\n";
}

TEST_F(ContinuousEngineTest, ChaosSweepConservesEveryContinuousRequest) {
  // The conservation invariant under multi-site chaos (dispatch faults +
  // KV allocation failures) with a page ledger tight enough to preempt:
  // every id finishes exactly once, completed requests carry real output,
  // and a preempted-then-failed round never duplicates or loses work.
  std::vector<std::uint64_t> seeds = {3, 11, 19};
  if (const char* env = std::getenv("LLMPQ_CHAOS_SEEDS")) {
    // Nightly CI widens the sweep: LLMPQ_CHAOS_SEEDS=N runs seeds 1..N.
    seeds.clear();
    const long n = std::strtol(env, nullptr, 10);
    for (long i = 1; i <= n; ++i)
      seeds.push_back(static_cast<std::uint64_t>(i));
  }
  for (std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const bool failed_before = HasFailure();
    FaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back(rule("serve.dispatch", FaultKind::kThrow, 0.25, 2));
    plan.rules.push_back(
        rule("engine.kv_alloc", FaultKind::kAllocFail, 0.25, 2));

    OnlineEngineOptions opt;
    opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
    opt.scheduler.exec = DecodeExec::kContinuous;
    opt.scheduler.max_batch = 3;
    opt.scheduler.max_retries = 4;
    opt.scheduler.retry_backoff_s = 0.001;
    opt.scheduler.kv_page_size = 4;
    opt.scheduler.kv_pages = 10;

    const int n = 5;
    Rng rng(41 + static_cast<std::uint64_t>(seed));
    std::vector<OnlineTraceRequest> trace;
    std::vector<std::vector<TokenId>> references;
    for (int i = 0; i < n; ++i) {
      OnlineTraceRequest t;
      t.prompt = make_prompt(rng, spec_, 6 + i);
      t.gen_tokens = 4;
      references.push_back(reference_generate(weights_, {t.prompt}, 4)[0]);
      trace.push_back(std::move(t));
    }
    OnlineReport rep;
    {
      ArmedPlan armed(plan);
      rep = serve_trace(engine_, trace, opt);
    }
    if (!engine_.healthy()) engine_.restart();

    ASSERT_EQ(static_cast<int>(rep.requests.size()), n);
    std::set<int> seen;
    for (const RequestStats& r : rep.requests)
      EXPECT_TRUE(seen.insert(r.id).second) << "id finished twice: " << r.id;
    EXPECT_EQ(rep.completed + rep.timed_out + rep.rejected + rep.failed, n);
    // Completed requests carry their exact unbatched continuation even
    // when the run preempted or retried them.
    for (const RequestStats& r : rep.requests) {
      if (r.outcome != RequestOutcome::kCompleted) continue;
      EXPECT_EQ(rep.generated[static_cast<std::size_t>(r.id)],
                references[static_cast<std::size_t>(r.id)])
          << "request " << r.id;
    }
    if (!failed_before && HasFailure())
      dump_chaos_artifact("ChaosSweepConservesEveryContinuousRequest", seed,
                          plan, rep);
  }
}

TEST_F(ContinuousEngineTest, LiveLoopServesContinuousSubmissions) {
  OnlineEngineOptions opt;
  opt.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opt.scheduler.exec = DecodeExec::kContinuous;
  opt.scheduler.max_batch = 4;
  OnlineEngine server(engine_, opt);
  Rng rng(13);
  for (int i = 0; i < 4; ++i) server.submit(make_prompt(rng, spec_, 6 + i), 3);
  server.close();
  const OnlineReport rep = server.wait();
  EXPECT_EQ(rep.completed, 4);
  for (const auto& g : rep.generated) EXPECT_EQ(g.size(), 3u);
}

}  // namespace
}  // namespace llmpq
